"""Tests for the resilient simulation service (repro.analysis.service):
admission control, warm hits, circuit breaker, drain, deadline budgets,
retry exhaustion, and resume semantics."""

import multiprocessing
import os
import shutil
import time

import pytest

from repro import faults
from repro.analysis import experiments
from repro.analysis import queue as jobqueue
from repro.analysis.runner import _resolve_item
from repro.analysis.service import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                                    ReproService, ServiceError, _Leg,
                                    run_service)
from repro.analysis.store import RunStore
from repro.analysis.supervisor import processes_available


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-store"))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    faults.clear()
    yield
    experiments.clear_cache()
    faults.clear()


def _spec(seed=1, instructions=800):
    return {"workload": "specint", "cpu": "smt", "os_mode": "app",
            "instructions": instructions, "seed": seed}


def _serve(store, specs, **overrides):
    kwargs = dict(store=store, isolation="inline", backoff_base=0.01)
    kwargs.update(overrides)
    return run_service(specs, **kwargs)


# -- circuit breaker (pure unit) --------------------------------------------

def test_breaker_trips_after_threshold():
    moves = []
    b = CircuitBreaker(threshold=3, cooldown=2,
                       on_transition=lambda o, n, w: moves.append((o, n)))
    b.record_failure("one")
    b.record_failure("two")
    assert b.state == CLOSED and b.allow()
    b.record_failure("three")
    assert b.state == OPEN and b.trips == 1
    assert moves == [(CLOSED, OPEN)]


def test_breaker_success_resets_consecutive_count():
    b = CircuitBreaker(threshold=2, cooldown=2)
    b.record_failure("a")
    b.record_success()
    b.record_failure("b")
    assert b.state == CLOSED  # failures were not consecutive


def test_breaker_cooldown_counted_in_denials():
    b = CircuitBreaker(threshold=1, cooldown=3)
    b.record_failure("boom")
    assert b.state == OPEN
    assert not b.allow() and not b.allow()  # denials 1, 2
    assert b.allow()  # denial 3 admits the half-open probe
    assert b.state == HALF_OPEN
    assert not b.allow()  # only one probe in flight
    b.record_success()
    assert b.state == CLOSED and b.allow()


def test_breaker_probe_failure_reopens():
    b = CircuitBreaker(threshold=1, cooldown=1)
    b.record_failure("boom")
    assert b.allow() and b.state == HALF_OPEN
    b.record_failure("still broken")
    assert b.state == OPEN and b.trips == 2


def test_breaker_validation():
    with pytest.raises(ValueError, match="threshold"):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError, match="cooldown"):
        CircuitBreaker(cooldown=0)


def test_breaker_json_shape():
    b = CircuitBreaker(threshold=2, cooldown=4)
    assert b.to_json_dict() == {"state": CLOSED, "trips": 0,
                                "threshold": 2, "cooldown": 4}


# -- end-to-end (inline) ----------------------------------------------------

def test_inline_sweep_completes(tmp_path):
    store = RunStore(tmp_path / "store")
    report = _serve(store, [_spec(1), _spec(2)])
    assert report.ok and report.clean
    assert report.counts[jobqueue.DONE] == 2
    assert report.counts[jobqueue.PENDING] == 0
    fingerprints = {job["fingerprint"] for job in report.jobs}
    assert all(store.get(fp) is not None for fp in fingerprints)
    assert "service report" in report.render()


def test_rerun_serves_from_journal_as_done(tmp_path):
    store = RunStore(tmp_path / "store")
    first = _serve(store, [_spec(1)])
    again = _serve(store, [_spec(1)])
    # The journal already knows the job: no re-execution, no warm copy.
    assert again.counts[jobqueue.DONE] == 1 and again.warm_hits == 0
    assert again.ledger == first.ledger


def test_fresh_journal_with_warm_store_serves_warm(tmp_path):
    store = RunStore(tmp_path / "store")
    _serve(store, [_spec(1)])
    # A new sweep (fresh journal) against the same warm store.
    shutil.rmtree(store.root / jobqueue.QUEUE_DIR)
    report = _serve(store, [_spec(1)])
    assert report.warm_hits == 1
    (job,) = report.jobs
    assert job["state"] == jobqueue.DONE and job["from_store"]
    assert "warm hit" in " ".join(report.transcript)


def test_duplicate_specs_coalesce(tmp_path):
    store = RunStore(tmp_path / "store")
    report = _serve(store, [_spec(1), _spec(1)])
    assert report.counts[jobqueue.DONE] == 1
    (job,) = report.jobs
    assert job["coalesced"] == 1


def test_backlog_limit_sheds_submit(tmp_path):
    store = RunStore(tmp_path / "store")
    report = _serve(store, [_spec(1), _spec(2)], queue_limit=1)
    assert report.counts["shed"] == 1
    assert report.counts[jobqueue.DONE] == 1
    assert any("shed" in line for line in report.transcript)


def test_expired_deadline_quarantines_without_running(tmp_path):
    store = RunStore(tmp_path / "store")
    report = _serve(store, [_spec(1)], deadline_s=0.0, retries=0)
    assert not report.ok
    assert report.counts[jobqueue.QUARANTINED] == 1
    (job,) = report.jobs
    assert "deadline expired" in job["error"]
    assert store.get(job["fingerprint"]) is None  # never executed


def test_retry_exhaustion_quarantines_job_not_sweep(tmp_path):
    store = RunStore(tmp_path / "store")
    # times=0 = unlimited: every attempt of the -s1 job loses its worker.
    faults.install(faults.FaultPlan(sites=(
        faults.FaultSite("service.worker.lost", times=0, match="-s1"),)),
        env=False)
    try:
        report = _serve(store, [_spec(1), _spec(2)], retries=1)
    finally:
        faults.clear()
    assert not report.ok
    assert report.counts[jobqueue.QUARANTINED] == 1
    assert report.counts[jobqueue.DONE] == 1  # the healthy job finished
    quarantined = [j for j in report.jobs
                   if j["state"] == jobqueue.QUARANTINED]
    assert quarantined[0]["attempts"] == 2  # first try + one retry


def test_drain_stops_claims_and_preserves_backlog(tmp_path):
    store = RunStore(tmp_path / "store")
    service = ReproService(store, isolation="inline", backoff_base=0.01)
    service.on_complete = lambda job: service.request_drain()
    for seed in (1, 2, 3):
        service.submit(_resolve_item(_spec(seed)))
    report = service.run()
    assert report.drained
    assert report.counts[jobqueue.DONE] == 1
    assert report.counts[jobqueue.PENDING] == 2
    # The backlog is someone else's problem now -- but an explicit one.
    with pytest.raises(ServiceError, match="--resume"):
        _serve(store, [_spec(s) for s in (1, 2, 3)])
    resumed = _serve(store, [_spec(s) for s in (1, 2, 3)], resume=True)
    assert resumed.ok and resumed.counts[jobqueue.DONE] == 3


def test_resume_requires_flag_only_when_unfinished(tmp_path):
    store = RunStore(tmp_path / "store")
    _serve(store, [_spec(1)])
    # Everything finished: no --resume needed for a follow-up sweep.
    report = _serve(store, [_spec(1), _spec(2)])
    assert report.ok and report.counts[jobqueue.DONE] == 2


def test_startup_prunes_stale_worker_files(tmp_path):
    store = RunStore(tmp_path / "store")
    progress = jobqueue.queue_root(store.root) / "progress"
    progress.mkdir(parents=True)
    (progress / "worker-0.json").write_text("{}")
    (progress / "worker-3.json").write_text("{}")
    service = ReproService(store, isolation="inline")
    assert not list(progress.glob("worker-*.json"))
    assert any("pruned 2 stale worker state files" in line
               for line in service.transcript)


def test_breaker_trip_fault_degrades_then_recovers(tmp_path):
    store = RunStore(tmp_path / "store")
    faults.install(faults.FaultPlan(sites=(
        faults.FaultSite("store.breaker.trip", times=1),)), env=False)
    try:
        report = _serve(store, [_spec(1), _spec(2)], breaker_cooldown=2)
    finally:
        faults.clear()
    assert report.ok  # degraded, recovered, finished
    assert report.breaker["trips"] == 1
    assert report.breaker["state"] == CLOSED
    assert any("half-open -> closed" in line for line in report.transcript)


def test_half_open_deadline_expiry_reopens_breaker(tmp_path):
    store = RunStore(tmp_path / "store")
    service = ReproService(store, isolation="inline")
    job, _ = service.queue.submit(_resolve_item(_spec()), deadline_s=0.0)
    service.breaker.trip("storm")
    while not service.breaker.allow():
        pass
    assert service.breaker.state == HALF_OPEN
    claimed = service.queue.claim("w0")
    assert service._start_leg(claimed, use_processes=False) is None
    assert claimed.state == jobqueue.QUARANTINED
    assert service.breaker.state == OPEN  # probe lost, not stuck half-open
    assert service._free_slots == [0]


def test_half_open_orphan_claim_reopens_breaker(tmp_path):
    store = RunStore(tmp_path / "store")
    service = ReproService(store, isolation="inline", breaker_cooldown=1)
    service.queue.submit(_resolve_item(_spec()))
    service.breaker.trip("storm")
    faults.install(faults.FaultPlan(sites=(
        faults.FaultSite("queue.claim.orphan", times=1),)), env=False)
    try:
        service._launch_phase(use_processes=False)
    finally:
        faults.clear()
    assert service.breaker.state == OPEN
    assert any("probe lost" in line for line in service.transcript)


def test_half_open_nonstore_failure_reopens_then_recovers(tmp_path):
    # A half-open probe whose worker dies with a non-store error must
    # re-open the circuit (else the service livelocks in HALF_OPEN);
    # cooldown-counted probing then resumes and closes it.
    store = RunStore(tmp_path / "store")
    faults.install(faults.FaultPlan(sites=(
        faults.FaultSite("store.breaker.trip", times=1),
        faults.FaultSite("service.worker.lost", times=1),)), env=False)
    try:
        report = _serve(store, [_spec(1)], breaker_cooldown=1)
    finally:
        faults.clear()
    assert report.ok, report.render()
    assert report.breaker["state"] == CLOSED
    assert report.breaker["trips"] == 2  # injected storm + lost probe
    assert any("probe lost" in line for line in report.transcript)


def test_constructor_validation(tmp_path):
    store = RunStore(tmp_path / "store")
    with pytest.raises(ValueError, match="workers"):
        ReproService(store, workers=0)
    with pytest.raises(ValueError, match="isolation"):
        ReproService(store, isolation="thread")


def test_report_json_roundtrips(tmp_path):
    store = RunStore(tmp_path / "store")
    report = _serve(store, [_spec(1)])
    data = report.to_json_dict()
    assert data["counts"][jobqueue.DONE] == 1
    assert data["ledger"] == report.ledger
    assert isinstance(data["transcript"], list)


@pytest.mark.skipif(not processes_available(),
                    reason="process isolation unavailable")
def test_process_mode_sweep_completes(tmp_path):
    store = RunStore(tmp_path / "store")
    report = run_service([_spec(1)], store=store, isolation="process",
                         backoff_base=0.01, timeout=60.0)
    assert report.ok and report.counts[jobqueue.DONE] == 1


@pytest.mark.skipif(not processes_available(),
                    reason="process isolation unavailable")
def test_process_mode_worker_lost_is_retried(tmp_path):
    store = RunStore(tmp_path / "store")
    faults.install(faults.FaultPlan(sites=(
        faults.FaultSite("service.worker.lost", times=1),)), env=False)
    try:
        report = run_service([_spec(1)], store=store, isolation="process",
                             backoff_base=0.01, timeout=60.0)
    finally:
        faults.clear()
    assert report.ok, report.render()
    (job,) = report.jobs
    assert job["attempts"] == 2
    assert any("worker lost" in line for line in report.transcript)


def test_lease_age_measured_on_wall_clock(tmp_path):
    # Heartbeat mtimes are epoch seconds; comparing them against the
    # monotonic clock would make every age hugely negative and the
    # lease check permanently false.
    store = RunStore(tmp_path / "store")
    service = ReproService(store, isolation="inline", lease_s=5.0)
    job, _ = service.queue.submit(_resolve_item(_spec()))
    heartbeat = tmp_path / "worker-0.json"
    heartbeat.write_text("{}")
    leg = _Leg(job, 0, progress_path=str(heartbeat))
    assert not service._lease_expired(leg)  # fresh heartbeat
    stale = time.time() - 60.0
    os.utime(heartbeat, (stale, stale))
    assert service._lease_expired(leg)
    assert not service._lease_expired(_Leg(job, 0))  # no heartbeat file
    missing = _Leg(job, 0, progress_path=str(tmp_path / "absent.json"))
    assert not service._lease_expired(missing)  # timeout governs


@pytest.mark.skipif(not processes_available(),
                    reason="process isolation unavailable")
def test_stalled_heartbeat_revokes_lease_and_requeues(tmp_path):
    store = RunStore(tmp_path / "store")
    service = ReproService(store, isolation="process", lease_s=5.0,
                           backoff_base=0.01)
    service.queue.submit(_resolve_item(_spec()))
    claimed = service.queue.claim("w0")
    heartbeat = tmp_path / "worker-0.json"
    heartbeat.write_text("{}")
    proc = multiprocessing.get_context().Process(target=time.sleep,
                                                 args=(60,), daemon=True)
    proc.start()
    leg = _Leg(claimed, 0, proc=proc, progress_path=str(heartbeat))
    service._active[claimed.id] = leg
    service._free_slots = []
    service.breaker.trip("storm")  # pretend this leg is the probe
    while not service.breaker.allow():
        pass
    assert service.breaker.state == HALF_OPEN
    try:
        service._reap()  # fresh heartbeat: lease healthy, nothing reaped
        assert claimed.id in service._active
        stale = time.time() - 60.0
        os.utime(heartbeat, (stale, stale))
        service._reap()
    finally:
        if proc.is_alive():  # pragma: no cover - revocation failed
            proc.kill()
        proc.join()
    assert claimed.id not in service._active
    assert claimed.state == jobqueue.PENDING  # requeued, not lost
    assert service._free_slots == [0]
    assert service.breaker.state == OPEN  # revoked probe re-opens
    assert any("lease expired" in line for line in service.transcript)


def test_service_leaves_no_armed_plan(tmp_path):
    store = RunStore(tmp_path / "store")
    _serve(store, [_spec(1)])
    assert faults.active() is None
