"""Tests for the pipeline trace recorder."""

import json

import pytest

from repro.core.simulator import Simulation
from repro.core.trace import FETCH, RETIRE, SQUASH, TraceEvent, TraceRecorder
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode
from repro.workloads.specint import SpecIntWorkload


def make_instr(service="user", pc=0x1000):
    return Instruction(InstrType.INT_ALU, Mode.USER, service, pc)


def test_capacity_validation():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_record_and_len():
    tr = TraceRecorder(capacity=10)
    tr.record(5, FETCH, 0, make_instr())
    assert len(tr) == 1
    assert tr.recorded == 1


def test_ring_buffer_drops_oldest():
    tr = TraceRecorder(capacity=3)
    for i in range(5):
        tr.record(i, FETCH, 0, make_instr(pc=0x1000 + 4 * i))
    assert len(tr) == 3
    assert tr.dropped == 2
    assert tr.events[0].cycle == 2


def test_kind_filter():
    tr = TraceRecorder(kinds=(RETIRE,))
    tr.record(0, FETCH, 0, make_instr())
    tr.record(1, RETIRE, 0, make_instr())
    assert len(tr) == 1
    assert tr.events[0].kind == RETIRE


def test_service_filter():
    tr = TraceRecorder(services=("syscall:",))
    tr.record(0, FETCH, 0, make_instr("user"))
    tr.record(1, FETCH, 0, make_instr("syscall:read"))
    assert [e.service for e in tr.events] == ["syscall:read"]


def test_service_filter_applies_to_squash():
    tr = TraceRecorder(kinds=(SQUASH,), services=("syscall:",))
    tr.record(0, SQUASH, 0, make_instr("user"))
    tr.record(1, SQUASH, 0, make_instr("syscall:read"))
    assert [e.service for e in tr.events] == ["syscall:read"]
    assert all(e.kind == SQUASH for e in tr.events)


def test_to_jsonl_round_trips():
    tr = TraceRecorder()
    tr.record(7, FETCH, 2, make_instr("user", pc=0xABC0))
    tr.record(9, SQUASH, 1, make_instr("syscall:read"))
    lines = tr.to_jsonl().splitlines()
    assert len(lines) == 2
    loaded = [json.loads(line) for line in lines]
    assert loaded[0]["cycle"] == 7 and loaded[0]["kind"] == FETCH
    assert loaded[1]["service"] == "syscall:read"
    assert [TraceEvent(**d) for d in loaded] == list(tr.events)
    assert tr.to_jsonl(limit=1).splitlines() == [lines[1]]


def test_window_and_by_service():
    tr = TraceRecorder()
    for i in range(10):
        tr.record(i * 10, FETCH, 0, make_instr("user" if i % 2 else "netisr"))
    assert len(tr.window(20, 50)) == 3
    assert all(e.service == "netisr" for e in tr.by_service("netisr"))


def test_dump_renders_tail():
    tr = TraceRecorder()
    tr.record(7, FETCH, 2, make_instr("user", pc=0xABC0))
    text = tr.dump()
    assert "ctx2" in text
    assert "0x00000000abc0" in text
    assert "INT_ALU" in text


def test_event_format_is_single_line():
    e = TraceEvent(12, RETIRE, 1, 0x4000, "syscall:read", "LOAD")
    assert "\n" not in e.format()


def test_squash_trace_covers_fetch_buffer_victims():
    # stats.squashed counts pipeline victims only; the trace additionally
    # records the squashed fetch-buffer instruction, so the Q-event count
    # can never undershoot the statistic.
    sim = Simulation(SpecIntWorkload(), seed=55)
    tracer = TraceRecorder(capacity=100_000, kinds=(SQUASH,))
    sim.processor.tracer = tracer
    sim.run(max_instructions=20_000)
    assert sim.stats.squashed > 0
    assert tracer.recorded >= sim.stats.squashed
    assert all(e.kind == SQUASH for e in tracer.events)


def test_tracer_wired_into_simulation():
    sim = Simulation(SpecIntWorkload(), seed=55)
    tracer = TraceRecorder(capacity=5000)
    sim.processor.tracer = tracer
    sim.run(max_instructions=3_000)
    kinds = {e.kind for e in tracer.events}
    assert FETCH in kinds and RETIRE in kinds
    assert tracer.recorded > 3_000  # fetch + retire at minimum
