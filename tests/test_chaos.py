"""Chaos matrix tests: scenario selection, determinism of the JSON report,
and graceful degradation when process isolation is unavailable."""

import pytest

from repro import faults
from repro.analysis import experiments
from repro.faults import chaos


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-store"))
    experiments.clear_cache()
    faults.clear()
    yield
    experiments.clear_cache()
    faults.clear()


def _fast(store_root, names, **overrides):
    kwargs = dict(names=names, instructions=800, retries=2,
                  max_workers=2, backoff_base=0.01, isolation="inline",
                  timeout=chaos.HANG_TIMEOUT)
    kwargs.update(overrides)
    return chaos.run_matrix(store_root, **kwargs)


def test_scenario_names_match_registry():
    assert chaos.scenario_names() == [name for name, _ in chaos.SCENARIOS]
    assert "worker-crash" in chaos.scenario_names()


def test_unknown_scenario_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown scenario"):
        chaos.run_matrix(tmp_path, names=["worker-crash", "nope"])


def test_worker_crash_scenario_survives(tmp_path):
    report = _fast(tmp_path / "m", ["worker-crash"])
    assert report.survived
    (scenario,) = report.scenarios
    assert scenario.name == "worker-crash"
    assert scenario.survived and not scenario.skipped
    assert all(check["ok"] for check in scenario.checks)
    assert "chaos matrix (seed 11): 1/1 scenarios survived" \
        in report.render()


def test_torn_write_scenario_reclaims_tmp(tmp_path):
    report = _fast(tmp_path / "m", ["torn-write"])
    assert report.survived
    check_names = [check["name"] for check in report.scenarios[0].checks]
    assert "stranded temp file found" in check_names
    assert "temp files reclaimed" in check_names


def test_corrupt_entry_scenario_quarantines(tmp_path):
    report = _fast(tmp_path / "m", ["corrupt-entry"])
    assert report.survived, report.render()


def test_hung_run_skipped_without_processes(tmp_path):
    report = _fast(tmp_path / "m", ["hung-run"])
    (scenario,) = report.scenarios
    assert scenario.skipped
    assert report.survived  # skipped scenarios don't fail the matrix


def test_report_json_is_deterministic(tmp_path):
    names = ["worker-crash", "mid-sim-exception", "disk-full"]
    first = _fast(tmp_path / "a", names).to_json_dict()
    second = _fast(tmp_path / "b", names).to_json_dict()
    assert first == second


def test_matrix_leaves_no_armed_plan(tmp_path):
    _fast(tmp_path / "m", ["worker-crash"])
    assert faults.active() is None


# -- service scenarios -------------------------------------------------------


def test_service_scenarios_registered():
    names = chaos.scenario_names()
    for name in ("torn-journal", "orphan-claim", "service-worker-lost",
                 "breaker-trip", "graceful-drain", "kill-resume"):
        assert name in names


def test_service_scenarios_survive(tmp_path):
    names = ["torn-journal", "orphan-claim", "service-worker-lost",
             "breaker-trip", "graceful-drain"]
    report = _fast(tmp_path / "m", names)
    assert report.survived, report.render()
    assert all(not s.skipped for s in report.scenarios)
    assert all(all(check["ok"] for check in s.checks)
               for s in report.scenarios)


def test_service_scenario_report_deterministic(tmp_path):
    names = ["torn-journal", "breaker-trip", "graceful-drain"]
    first = _fast(tmp_path / "a", names).to_json_dict()
    second = _fast(tmp_path / "b", names).to_json_dict()
    assert first == second
