"""Unit tests for the pipeline core, driven by scripted instruction streams."""

import random
from collections import deque

from repro.core.config import CPUConfig
from repro.core.processor import Processor
from repro.core.stats import SimStats
from repro.isa.instruction import (
    Instruction,
    ST_SQUASHED,
)
from repro.isa.types import InstrType, Mode
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy

#: Fast memory geometry so unit tests exercise pipeline mechanics rather
#: than waiting out cold-miss latencies.
FAST_MEMORY = MemoryConfig(
    l1_fill_penalty=1, l2_latency=2, mem_latency=4,
    l1l2_bus_latency=0, mem_bus_latency=0,
)


class ScriptedStream:
    """A fake context stream that serves a fixed instruction list."""

    def __init__(self, instructions=()):
        self.queue = deque(instructions)
        self.replay = deque()
        self.current_service = "user"

    def next_instruction(self, now):
        if self.replay:
            return self.replay.popleft()
        return self.queue.popleft() if self.queue else None

    def push_replay(self, instructions):
        self.replay.extend(instructions)


def alu(pc, dep=False):
    return Instruction(InstrType.INT_ALU, Mode.USER, "user", pc, dep=dep)


def load(pc, addr):
    return Instruction(InstrType.LOAD, Mode.USER, "user", pc, addr=addr)


def fp(pc):
    return Instruction(InstrType.FP_ALU, Mode.USER, "user", pc, latency=4)


def branch(pc, taken, target):
    return Instruction(InstrType.COND_BRANCH, Mode.USER, "user", pc,
                       taken=taken, target=target)


def make_processor(streams, n_contexts=None, **cfg_kwargs):
    n = n_contexts or len(streams)
    cfg = CPUConfig(n_contexts=n, fetch_contexts=min(2, n), **cfg_kwargs)
    stats = SimStats(n)
    proc = Processor(cfg, streams, MemoryHierarchy(FAST_MEMORY), stats, random.Random(0))
    return proc, stats


def run_cycles(proc, n):
    for t in range(n):
        proc.cycle(t)


def test_straight_line_code_retires():
    stream = ScriptedStream([alu(0x1000 + 4 * i) for i in range(40)])
    proc, stats = make_processor([stream])
    run_cycles(proc, 60)
    assert stats.retired == 40
    assert stats.fetched == 40
    assert stats.squashed == 0


def test_in_order_retirement_per_context():
    instrs = [alu(0x1000 + 4 * i) for i in range(10)]
    stream = ScriptedStream(instrs)
    proc, stats = make_processor([stream])
    retired_order = []
    original = stats.retire

    def spy(instr):
        retired_order.append(instr.pc)
        original(instr)

    stats.retire = spy
    run_cycles(proc, 30)
    assert retired_order == sorted(retired_order)


def _cycles_to_retire(instrs, n):
    proc, stats = make_processor([ScriptedStream(instrs)])
    for t in range(500):
        proc.cycle(t)
        if stats.retired >= n:
            return t
    raise AssertionError("did not finish")


def test_dependent_chain_serializes():
    chain = [alu(0x1000 + 4 * i, dep=True) for i in range(20)]
    indep = [alu(0x2000 + 4 * i, dep=False) for i in range(20)]
    # A fully dependent chain must take longer than independent work.
    assert _cycles_to_retire(chain, 20) > _cycles_to_retire(indep, 20)


def test_load_latency_from_hierarchy():
    stream = ScriptedStream([load(0x1000, 0x9000)])
    proc, stats = make_processor([stream])
    run_cycles(proc, 3)
    assert stats.retired == 0  # cold miss keeps it in flight
    for t in range(3, 80):
        proc.cycle(t)
    assert stats.retired == 1


def test_fp_uses_fp_queue():
    stream = ScriptedStream([fp(0x1000) for _ in range(6)])
    proc, stats = make_processor([stream])
    peak_fp = 0
    for t in range(40):
        proc.cycle(t)
        peak_fp = max(peak_fp, proc.fp_count)
    assert peak_fp > 0          # FP work went through the FP queue
    assert stats.retired == 6


def test_mispredicted_branch_squashes_and_replays():
    instrs = [branch(0x1000, True, 0x4000)] + [alu(0x4000 + 4 * i) for i in range(12)]
    stream = ScriptedStream(instrs)
    proc, stats = make_processor([stream])
    # Pre-warm the I-cache so younger instructions enter the pipeline and
    # are genuinely in flight when the branch resolves.
    proc.hierarchy.inst_access(0, 0x1000, 0, 0)
    proc.hierarchy.inst_access(0, 0x4000, 0, 0)
    run_cycles(proc, 80)
    # The cold predictor misses the taken branch; younger instructions are
    # squashed once and replayed to completion.
    assert stats.squashed > 0
    assert stats.retired == 13


def test_correctly_predicted_fallthrough_no_squash():
    instrs = []
    for i in range(10):
        pc = 0x1000 + 8 * i
        instrs.append(branch(pc, False, pc + 4))
        instrs.append(alu(pc + 4))
    stream = ScriptedStream(instrs)
    proc, stats = make_processor([stream])
    run_cycles(proc, 60)
    assert stats.retired == 20
    assert stats.squashed == 0   # not-taken is the cold default


def test_fetch_stops_at_predicted_taken_branch():
    # Train the predictor so the branch is predicted taken, then check the
    # fetch block ends there (one fetch group should not include younger).
    proc, stats = make_processor([ScriptedStream()])
    unit = proc.branch_unit
    for _ in range(40):
        unit.predictor.update(0x1000, True)
    unit.btb.insert(0x1000, 0x4000, 0, 0)
    # Pre-warm the I-cache so fetch is not blocked by cold misses.
    proc.hierarchy.inst_access(0, 0x1000, 0, 0)
    proc.hierarchy.inst_access(0, 0x4000, 0, 0)
    proc.contexts[0].last_line = -1
    b = branch(0x1000, True, 0x4000)
    younger = alu(0x4000)
    proc.contexts[0].stream = ScriptedStream([b, younger])
    proc.cycle(0)
    assert b.state != ST_SQUASHED
    assert b.fetch_cycle == 0
    assert younger.fetch_cycle != 0  # fetched on a later cycle


def test_icount_prefers_less_loaded_context():
    # Context 0 has a long dependent chain clogging its queue share;
    # context 1 should still make progress.
    chain = [alu(0x1000 + 4 * i, dep=True) for i in range(30)]
    fast = [alu(0x8000 + 4 * i) for i in range(30)]
    proc, stats = make_processor([ScriptedStream(chain), ScriptedStream(fast)])
    run_cycles(proc, 100)
    assert stats.retired == 60


def test_queue_full_stalls_fetch():
    chain = [alu(0x1000 + 4 * i, dep=True) for i in range(64)]
    proc, stats = make_processor([ScriptedStream(chain)], int_queue=8)
    run_cycles(proc, 10)
    assert stats.queue_full_stalls > 0
    assert proc.int_count <= 8


def test_inflight_limit_respected():
    instrs = [load(0x1000 + 4 * i, 0x100000 + 64 * i) for i in range(300)]
    proc, stats = make_processor([ScriptedStream(instrs)],
                                 rename_registers=16, int_queue=8)
    run_cycles(proc, 40)
    assert proc.inflight <= proc.config.inflight_limit


def test_zero_fetch_counted_when_stream_empty():
    proc, stats = make_processor([ScriptedStream([])])
    run_cycles(proc, 10)
    assert stats.zero_fetch_cycles == 10
    assert stats.retired == 0


def test_charge_cycle_attributes_services():
    stream = ScriptedStream([alu(0x1000)])
    proc, stats = make_processor([stream])
    run_cycles(proc, 3)
    assert sum(stats.service_cycles.values()) == 3  # 1 context x 3 cycles


def test_retire_width_bounds_throughput():
    instrs = [alu(0x1000 + 4 * i) for i in range(48)]
    proc, stats = make_processor([ScriptedStream(instrs)], retire_width=2)
    run_cycles(proc, 12)
    assert stats.retired <= 2 * 12


def test_squash_restores_queue_counts():
    instrs = [branch(0x1000, True, 0x4000)] + \
             [alu(0x4000 + 4 * i, dep=(i % 2 == 0)) for i in range(20)]
    proc, stats = make_processor([ScriptedStream(instrs)])
    proc.hierarchy.inst_access(0, 0x1000, 0, 0)
    proc.hierarchy.inst_access(0, 0x4000, 0, 0)
    run_cycles(proc, 120)
    assert stats.retired == 21
    assert proc.int_count == 0
    assert proc.fp_count == 0
    assert proc.inflight == 0
    assert proc.contexts[0].queued == 0
