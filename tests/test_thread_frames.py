"""Tests for software threads and execution frames."""

import random

import pytest

from repro.isa.code import CodeModel, CodeModelConfig, CodeWalker, SegmentSpec
from repro.isa.data import DataModel, Region
from repro.isa.mix import InstructionMix
from repro.isa.types import Mode
from repro.os_model.address_space import AddressSpace
from repro.os_model.thread import Frame, SoftwareThread, ThreadState


@pytest.fixture
def walker():
    rng = random.Random(5)
    model = CodeModel(CodeModelConfig(
        "frame-code", 0x1000_0000, InstructionMix(),
        segments=(SegmentSpec("a", 30, 6), SegmentSpec("b", 30, 6)),
        seed=5))
    data = DataModel([Region("fr", 0x2000_0000, 8, 4)], rng)
    return CodeWalker(model, rng, data, Mode.KERNEL, "kernel", 1, 0)


def test_frame_budget_respected(walker):
    frame = Frame(walker, 7, "svc")
    frame.start()
    emitted = 0
    while frame.next_instruction() is not None:
        emitted += 1
    assert emitted == 7


def test_zero_budget_frame_emits_nothing(walker):
    frame = Frame(walker, 0, "svc")
    frame.start()
    assert frame.next_instruction() is None


def test_negative_budget_rejected(walker):
    with pytest.raises(ValueError):
        Frame(walker, -1, "svc")


def test_frame_applies_service_label(walker):
    frame = Frame(walker, 3, "syscall:test")
    frame.start()
    instr = frame.next_instruction()
    assert instr.service == "syscall:test"


def test_frame_segment_jump(walker):
    frame = Frame(walker, 3, "svc", segment="b")
    frame.start()
    seg_b = walker.model.segments["b"]
    assert seg_b.start <= walker.block < seg_b.end


def test_frame_on_start_called_once(walker):
    calls = []
    frame = Frame(walker, 2, "svc", on_start=lambda: calls.append(1))
    frame.start()
    assert calls == [1]


def test_thread_push_frames_order(walker):
    thread = SoftwareThread(1, "t", AddressSpace(pid=0, name="p"))
    first = Frame(walker, 1, "first")
    second = Frame(walker, 1, "second")
    thread.push_frames([first, second])
    assert thread.current_frame is first


def test_thread_push_frame_lifo(walker):
    thread = SoftwareThread(1, "t", AddressSpace(pid=0, name="p"))
    a = Frame(walker, 1, "a")
    b = Frame(walker, 1, "b")
    thread.push_frame(a)
    thread.push_frame(b)
    assert thread.current_frame is b


def test_thread_block_and_wake():
    thread = SoftwareThread(1, "t", AddressSpace(pid=0, name="p"))
    assert thread.runnable
    thread.block("accept")
    assert thread.state is ThreadState.BLOCKED
    assert thread.block_reason == "accept"
    assert not thread.runnable
    thread.wake()
    assert thread.runnable
    assert thread.block_reason is None


def test_wake_does_not_resurrect_done_thread():
    thread = SoftwareThread(1, "t", AddressSpace(pid=0, name="p"))
    thread.state = ThreadState.DONE
    thread.wake()
    assert thread.state is ThreadState.DONE


def test_defer_parks_instruction():
    thread = SoftwareThread(1, "t", AddressSpace(pid=0, name="p"))
    sentinel = object()
    thread.defer(sentinel)
    assert thread.pending[0] is sentinel
