"""Tests for the ASN-tagged TLB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.classify import MissCause
from repro.memory.tlb import KERNEL_ASN, TLB


def test_capacity_validation():
    with pytest.raises(ValueError):
        TLB("bad", 0)


def test_probe_miss_does_not_fill():
    tlb = TLB("T", 4)
    assert not tlb.probe(10, 1, tid=0, kind=0)
    assert not tlb.lookup(10, 1)
    assert tlb.occupancy == 0


def test_fill_then_hit():
    tlb = TLB("T", 4)
    tlb.probe(10, 1, 0, 0)
    tlb.fill(10, 1, 0, 0)
    assert tlb.probe(10, 1, 0, 0)
    assert tlb.stats.miss_rate() == 0.5


def test_asn_distinguishes_address_spaces():
    tlb = TLB("T", 4)
    tlb.fill(10, 1, 0, 0)
    assert not tlb.probe(10, 2, 0, 0)  # same vpn, other ASN


def test_lru_eviction_when_full():
    tlb = TLB("T", 2)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(2, 1, 0, 0)
    tlb.probe(1, 1, 0, 0)  # refresh vpn 1
    tlb.fill(3, 1, 0, 0)   # evicts vpn 2 (LRU)
    assert tlb.lookup(1, 1)
    assert not tlb.lookup(2, 1)
    assert tlb.lookup(3, 1)


def test_double_fill_is_idempotent():
    tlb = TLB("T", 4)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(1, 1, 5, 1)
    assert tlb.occupancy == 1


def test_eviction_classified_by_evictor():
    tlb = TLB("T", 1)
    tlb.probe(1, 1, 0, 0)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(2, 1, 7, 0)        # thread 7 evicts thread 0's entry
    assert not tlb.probe(1, 1, 0, 0)
    assert tlb.stats.causes.get((0, int(MissCause.INTERTHREAD)), 0) == 1


def test_kernel_evicting_user_is_user_kernel():
    tlb = TLB("T", 1)
    tlb.probe(1, 1, 0, 0)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(2, KERNEL_ASN, 7, 1)   # kernel fill evicts
    tlb.probe(1, 1, 0, 0)
    assert tlb.stats.causes.get((0, int(MissCause.USER_KERNEL)), 0) == 1


def test_flush_asn_selective():
    tlb = TLB("T", 8)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(2, 1, 0, 0)
    tlb.fill(3, 2, 0, 0)
    dropped = tlb.flush_asn(1)
    assert dropped == 2
    assert not tlb.lookup(1, 1)
    assert tlb.lookup(3, 2)
    assert tlb.asn_flushes == 1


def test_flush_marks_invalidation_cause():
    tlb = TLB("T", 8)
    tlb.probe(1, 1, 0, 0)
    tlb.fill(1, 1, 0, 0)
    tlb.flush_asn(1)
    tlb.probe(1, 1, 0, 0)
    assert tlb.stats.causes.get((0, int(MissCause.INVALIDATION)), 0) == 1


def test_flush_all():
    tlb = TLB("T", 8)
    tlb.fill(1, 1, 0, 0)
    tlb.fill(2, 2, 0, 0)
    assert tlb.flush_all() == 2
    assert tlb.occupancy == 0


def test_sharing_tracked_between_threads():
    tlb = TLB("T", 8)
    tlb.fill(1, KERNEL_ASN, 1, 1)       # kernel thread 1 fills
    assert tlb.probe(1, KERNEL_ASN, 2, 1)  # thread 2 benefits
    assert tlb.stats.avoided[(1, 1)] == 1


def test_first_ever_miss_is_compulsory():
    tlb = TLB("T", 8)
    tlb.probe(42, 3, 0, 0)
    assert tlb.stats.causes == {(0, int(MissCause.COMPULSORY)): 1}


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                     min_size=1, max_size=200),
       capacity=st.integers(1, 16))
def test_occupancy_never_exceeds_capacity(keys, capacity):
    tlb = TLB("H", capacity)
    for i, (vpn, asn) in enumerate(keys):
        if not tlb.probe(vpn, asn, i % 4, i % 2):
            tlb.fill(vpn, asn, i % 4, i % 2)
    assert tlb.occupancy <= capacity


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 3)),
                     min_size=1, max_size=150))
def test_tlb_causes_sum_to_misses(keys):
    tlb = TLB("H", 8)
    for i, (vpn, asn) in enumerate(keys):
        if not tlb.probe(vpn, asn, i % 4, 0):
            tlb.fill(vpn, asn, i % 4, 0)
    assert sum(tlb.stats.causes.values()) == sum(tlb.stats.misses)
