"""Tests for the per-context instruction streams (TLB interception, spin
emission, replay, scheduling integration)."""

import random

import pytest

from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
from repro.isa.instruction import Instruction
from repro.isa.mix import InstructionMix
from repro.isa.types import InstrType, Mode
from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX, OSMode


@pytest.fixture
def osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(2))


def add_process(osk, behavior_factory, pid=0):
    asp = AddressSpace(pid=pid, name=f"p{pid}")
    asp.region("heap", 0x40_0000, 8, 4)
    code = CodeModel(CodeModelConfig(
        f"p{pid}", asp.base + 0x1_0000, InstructionMix(),
        segments=(SegmentSpec("main", 40, 8),), seed=pid))
    return osk.create_process(f"p{pid}", pid, code, asp, behavior_factory)


def test_stream_runs_idle_thread_when_no_work(osk):
    # The idle loop's first instructions fault the ITLB (cold TLBs), so the
    # very first deliveries are PAL refills; idle work follows.
    stream = osk.streams[0]
    services = []
    for i in range(3000):
        instr = stream.next_instruction(i)
        if instr is not None:
            services.append(instr.service)
    assert "idle" in services


def test_stream_schedules_ready_process(osk):
    def gen():
        while True:
            yield ("compute", 50)

    add_process(osk, lambda t: gen())
    stream = osk.streams[0]
    seen_user = False
    for i in range(4000):
        instr = stream.next_instruction(i)
        if instr is not None and instr.service == "user":
            seen_user = True
            break
    assert seen_user


def test_stream_intercepts_dtlb_miss(osk):
    def gen():
        while True:
            yield ("compute", 100)

    add_process(osk, lambda t: gen())
    stream = osk.streams[0]
    services = [stream.next_instruction(i) for i in range(3000)]
    services = [s.service for s in services if s is not None]
    assert "tlb:refill" in services or "pal:dtlb" in services
    assert osk.counters["dtlb_miss_events"] > 0


def test_replay_delivered_first(osk):
    stream = osk.streams[0]
    stream.next_instruction(0)
    fake = Instruction(InstrType.INT_ALU, Mode.USER, "user", 0xAAAA)
    stream.push_replay([fake])
    assert stream.next_instruction(1) is fake


def test_spin_instruction_emitted_on_contention(osk):
    def gen():
        yield ("syscall", "stat", {})
        while True:
            yield ("compute", 10)

    a = add_process(osk, lambda t: gen(), pid=0)
    b = add_process(osk, lambda t: gen(), pid=1)
    # Acquire the vfs lock on behalf of an unrelated holder so both
    # processes contend immediately.
    assert osk.locks.acquire("vfs", 999)
    spins = 0
    for i in range(4000):
        for stream in osk.streams:
            instr = stream.next_instruction(i)
            if instr is not None and instr.service == "spinlock":
                spins += 1
        if spins:
            break
    assert spins > 0
    assert osk.counters["spin_instructions"] > 0


def test_stream_switches_away_from_blocked_thread(osk):
    def gen():
        yield ("sleep", "never")
        yield ("compute", 10)

    t = add_process(osk, lambda t: gen())
    stream = osk.streams[0]
    for i in range(3000):
        stream.next_instruction(i)
    # The process blocked; the context must have moved on (idle thread).
    assert osk.scheduler.current[0] is not t


def test_current_service_reflects_frames(osk):
    stream = osk.streams[0]
    stream.next_instruction(0)
    assert isinstance(stream.current_service, str)


def test_app_only_stream_never_emits_kernel():
    osk = MiniDUX(MemoryHierarchy(), n_contexts=1, rng=random.Random(3),
                  mode=OSMode.APP_ONLY)

    def gen():
        while True:
            yield ("compute", 40)
            yield ("syscall", "getpid", {})

    asp = AddressSpace(pid=0, name="p0")
    asp.region("heap", 0x40_0000, 8, 4)
    code = CodeModel(CodeModelConfig(
        "p0", asp.base + 0x1_0000, InstructionMix(),
        segments=(SegmentSpec("main", 40, 8),), seed=0))
    osk.create_process("p0", 0, code, asp, lambda t: gen())
    stream = osk.streams[0]
    for i in range(2000):
        instr = stream.next_instruction(i)
        if instr is None:
            continue
        assert instr.service in ("user", "idle")
