"""Reproducibility guarantee: the same config and seed must produce a
byte-identical probe snapshot across fresh simulations.

Everything downstream leans on this -- the content-addressed store, the
diff engine's noise model (seed repeats are the *only* sanctioned source
of variation), and the perf gate's "simulated counters are deterministic"
assumption."""

from repro.analysis.artifact import canonical_json
from repro.analysis.experiments import build_simulation
from repro.analysis.snapshot import capture


def _snapshot_bytes(workload, cpu, os_mode, seed, instructions):
    sim = build_simulation(workload, cpu, os_mode, seed=seed)
    sim.run(max_instructions=instructions)
    return canonical_json(capture(sim)["probes"]).encode()


def test_same_config_and_seed_is_byte_identical():
    a = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    b = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    assert a == b


def test_apache_full_is_byte_identical_too():
    a = _snapshot_bytes("apache", "smt", "full", seed=23, instructions=4_000)
    b = _snapshot_bytes("apache", "smt", "full", seed=23, instructions=4_000)
    assert a == b


def test_different_seeds_actually_differ():
    a = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    b = _snapshot_bytes("specint", "smt", "full", seed=12, instructions=4_000)
    assert a != b  # otherwise the diff engine's noise bands are meaningless


# -- tiered execution (see docs/execution-modes.md) --------------------------
#
# The same contract extends to every execution tier: a config plus a
# *mode plan* is one deterministic trajectory, so fast-forward legs,
# sampled plans, and checkpoint-restored runs must all replay to
# byte-identical probe snapshots.


def _fast_snapshot_bytes(seed, instructions, stride):
    sim = build_simulation("specint", "smt", "full", seed=seed)
    sim.run_fast(max_instructions=instructions, stride=stride)
    return canonical_json(capture(sim)["probes"]).encode()


def test_fast_mode_is_byte_identical():
    a = _fast_snapshot_bytes(seed=11, instructions=8_000, stride=8)
    b = _fast_snapshot_bytes(seed=11, instructions=8_000, stride=8)
    assert a == b


def test_fast_mode_stride_is_part_of_the_trajectory():
    # Different strides are different (each internally deterministic)
    # trajectories; the stride is therefore part of a run's identity.
    a = _fast_snapshot_bytes(seed=11, instructions=8_000, stride=8)
    b = _fast_snapshot_bytes(seed=11, instructions=8_000, stride=4)
    assert a != b


def test_sampled_plan_replays_byte_identical_windows():
    from repro.core.engine import build_plan, run_plan

    def windows():
        sim = build_simulation("specint", "smt", "full", seed=11)
        plan = build_plan("sampled", 12_000, warmup=4_000,
                         sample=(4_000, 2_000))
        _, samples = run_plan(sim, plan)
        return [canonical_json(w["probes"]) for w in samples]

    first, second = windows(), windows()
    assert first and first == second


def test_checkpoint_restore_then_run_matches_straight_through():
    # The ISSUE-6 acceptance test: restore at K, run to 2K, and compare
    # byte-for-byte against a straight-through run of the same plan.
    from repro.core import checkpoint
    from repro.core.engine import Leg, run_plan

    k = 6_000
    straight = build_simulation("specint", "smt", "full", seed=11)
    run_plan(straight, [Leg("fast", k), Leg("fast", k)])

    saver = build_simulation("specint", "smt", "full", seed=11)
    run_plan(saver, [Leg("fast", k)])
    ckpt = checkpoint.take(saver, [Leg("fast", k)])

    resumed = build_simulation("specint", "smt", "full", seed=11)
    checkpoint.restore(resumed, ckpt)
    run_plan(resumed, [Leg("fast", k)])

    assert resumed.stats.retired == straight.stats.retired
    assert resumed.now == straight.now
    a = canonical_json(capture(straight)["probes"]).encode()
    b = canonical_json(capture(resumed)["probes"]).encode()
    assert a == b


def test_checkpointed_artifact_equals_straight_through(tmp_path, monkeypatch):
    # End to end through the store: executing the same tiered spec with
    # and without checkpoint reuse yields byte-identical artifacts
    # (checkpointing is an execution option, never part of the result).
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.analysis import experiments

    spec = experiments.run_spec("specint", "smt", "full", 12_000, seed=11,
                                mode="sampled", warmup=4_000,
                                sample=(4_000, 2_000))
    plain = experiments.execute_spec(spec)
    saved = experiments.execute_spec(spec, checkpoint=True)   # saves
    restored = experiments.execute_spec(spec, checkpoint=True)  # restores
    assert saved.sampling["checkpoint"]["restored"] is False
    assert restored.sampling["checkpoint"]["restored"] is True
    for window in ("startup", "steady", "total"):
        assert (canonical_json(plain.window(window))
                == canonical_json(saved.window(window))
                == canonical_json(restored.window(window)))
    assert plain.fingerprint == saved.fingerprint == restored.fingerprint
