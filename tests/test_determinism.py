"""Reproducibility guarantee: the same config and seed must produce a
byte-identical probe snapshot across fresh simulations.

Everything downstream leans on this -- the content-addressed store, the
diff engine's noise model (seed repeats are the *only* sanctioned source
of variation), and the perf gate's "simulated counters are deterministic"
assumption."""

from repro.analysis.artifact import canonical_json
from repro.analysis.experiments import build_simulation
from repro.analysis.snapshot import capture


def _snapshot_bytes(workload, cpu, os_mode, seed, instructions):
    sim = build_simulation(workload, cpu, os_mode, seed=seed)
    sim.run(max_instructions=instructions)
    return canonical_json(capture(sim)["probes"]).encode()


def test_same_config_and_seed_is_byte_identical():
    a = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    b = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    assert a == b


def test_apache_full_is_byte_identical_too():
    a = _snapshot_bytes("apache", "smt", "full", seed=23, instructions=4_000)
    b = _snapshot_bytes("apache", "smt", "full", seed=23, instructions=4_000)
    assert a == b


def test_different_seeds_actually_differ():
    a = _snapshot_bytes("specint", "smt", "full", seed=11, instructions=4_000)
    b = _snapshot_bytes("specint", "smt", "full", seed=12, instructions=4_000)
    assert a != b  # otherwise the diff engine's noise bands are meaningless
