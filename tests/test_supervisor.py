"""Supervised run engine tests: retry/backoff arithmetic, error taxonomy,
quarantine and partial results, timeouts, and the simulator watchdog."""

import pytest

from repro import faults
from repro.analysis import experiments, supervisor as sup
from repro.analysis.store import RunStore
from repro.core.simulator import NoProgressError
from repro.obs.events import ENGINE, EventBus
from repro.obs.registry import ProbeRegistry


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-store"))
    experiments.clear_cache()
    faults.clear()
    faults.set_attempt(1)
    yield
    experiments.clear_cache()
    faults.clear()
    faults.set_attempt(1)


def _item(cpu="smt", seed=29, instructions=2_000):
    return {"workload": "specint", "cpu": cpu, "os_mode": "app",
            "seed": seed, "instructions": instructions}


def _one(results):
    (result,) = results.values()
    return result


# -- pure arithmetic -------------------------------------------------------


def test_backoff_delay_is_exponential_and_capped():
    assert sup.backoff_delay(2, base=0.2) == pytest.approx(0.2)
    assert sup.backoff_delay(3, base=0.2) == pytest.approx(0.4)
    assert sup.backoff_delay(4, base=0.2) == pytest.approx(0.8)
    assert sup.backoff_delay(20, base=0.2) == sup.BACKOFF_CAP


def test_classify_error_taxonomy():
    assert sup.classify_error("ValueError") == sup.PERMANENT
    assert sup.classify_error("ArtifactError") == sup.PERMANENT
    assert sup.classify_error("OSError") == sup.TRANSIENT
    assert sup.classify_error("InjectedFault") == sup.TRANSIENT
    # An explicit hint wins over the type name.
    assert sup.classify_error("ValueError", transient_hint=True) \
        == sup.TRANSIENT
    assert sup.classify_error("OSError", transient_hint=False) \
        == sup.PERMANENT


def test_supervisor_rejects_bad_config():
    with pytest.raises(ValueError):
        sup.Supervisor(retries=-1)
    with pytest.raises(ValueError):
        sup.Supervisor(isolation="magic")


# -- happy paths (inline isolation: fast, deterministic) -------------------


def test_clean_run_inline(tmp_path):
    store = RunStore(tmp_path / "s")
    results = sup.run_many_supervised([_item()], isolation="inline",
                                      store=store)
    r = _one(results)
    assert r.ok and r.attempts == 1 and not r.from_store
    assert r.label == "specint-smt-app-s29"  # same keying as run_many
    assert store.get(r.artifact.fingerprint) == r.artifact
    assert r.transcript == ["attempt 1: ok"]


def test_second_sweep_served_from_store(tmp_path):
    store = RunStore(tmp_path / "s")
    sup.run_many_supervised([_item()], isolation="inline", store=store)
    experiments.clear_cache()
    r = _one(sup.run_many_supervised([_item()], isolation="inline",
                                     store=store))
    assert r.ok and r.from_store and r.attempts == 0


def test_retry_then_success_inline(tmp_path):
    registry = ProbeRegistry()
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("worker.crash", attempt=1),)), env=False)
    results = sup.run_many_supervised(
        [_item()], isolation="inline", backoff_base=0.01,
        store=RunStore(tmp_path / "s"), registry=registry)
    r = _one(results)
    assert r.ok and r.attempts == 2
    assert "retrying in 0.01s" in r.transcript[0]
    snap = registry.snapshot()
    assert snap["core.engine.retries"] == 1
    assert snap["core.engine.attempts"] == 2
    assert snap["core.engine.ok"] == 1
    assert snap["core.engine.quarantined"] == 0


def test_permanent_error_fails_without_retry(tmp_path, monkeypatch):
    def boom(spec, **kwargs):
        raise ValueError("broken spec")

    monkeypatch.setattr(experiments, "execute_spec", boom)
    r = _one(sup.run_many_supervised([_item()], isolation="inline",
                                     store=RunStore(tmp_path / "s")))
    assert not r.ok and r.quarantined
    assert r.attempts == 1
    assert r.error_kind == sup.PERMANENT
    assert "ValueError" in r.error


def test_transient_exhaustion_quarantines(tmp_path):
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("worker.crash", times=0),)), env=False)
    r = _one(sup.run_many_supervised(
        [_item()], isolation="inline", retries=2, backoff_base=0.01,
        store=RunStore(tmp_path / "s")))
    assert not r.ok and r.quarantined
    assert r.attempts == 3  # 1 + retries
    assert r.transcript[-1].endswith("quarantined")


def test_keep_going_false_skips_rest_inline(tmp_path, monkeypatch):
    original = experiments.execute_spec

    def selective(spec, **kwargs):
        if spec["cpu"] == "smt":
            raise ValueError("poisoned")
        return original(spec, **kwargs)

    monkeypatch.setattr(experiments, "execute_spec", selective)
    results = sup.run_many_supervised(
        [_item("smt"), _item("ss")], isolation="inline", keep_going=False,
        store=RunStore(tmp_path / "s"))
    bad, skipped = results.values()
    assert bad.quarantined and not bad.skipped
    assert skipped.skipped and not skipped.ok


def test_partial_results_with_keep_going(tmp_path):
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("worker.crash", times=0, match="-ss-"),)),
        env=False)
    results = sup.run_many_supervised(
        [_item("smt"), _item("ss")], isolation="inline", retries=1,
        backoff_base=0.01, store=RunStore(tmp_path / "s"))
    ok = [r for r in results.values() if r.ok]
    bad = [r for r in results.values() if not r.ok]
    assert len(ok) == 1 and "smt" in ok[0].label
    assert len(bad) == 1 and bad[0].quarantined and bad[0].attempts == 2


def test_engine_events_emitted(tmp_path):
    bus = EventBus()
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("worker.crash", attempt=1),)), env=False)
    sup.run_many_supervised([_item()], isolation="inline", backoff_base=0.01,
                            store=RunStore(tmp_path / "s"), events=bus)
    names = [e.name for e in bus.by_kind(ENGINE)]
    assert names == ["run.start", "run.retry", "run.start", "run.ok"]
    steps = [e.ts for e in bus.by_kind(ENGINE)]
    assert steps == sorted(steps)


# -- process isolation (timeouts, worker death) ----------------------------

needs_processes = pytest.mark.skipif(not sup.processes_available(),
                                     reason="no worker processes here")


@needs_processes
def test_clean_run_in_processes(tmp_path):
    store = RunStore(tmp_path / "s")
    r = _one(sup.run_many_supervised([_item()], isolation="process",
                                     store=store, max_workers=2))
    assert r.ok and r.attempts == 1
    assert store.get(r.artifact.fingerprint) == r.artifact


@needs_processes
def test_worker_hard_exit_is_retried(tmp_path):
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("worker.exit", attempt=1),)))
    r = _one(sup.run_many_supervised(
        [_item()], isolation="process", backoff_base=0.01,
        store=RunStore(tmp_path / "s")))
    assert r.ok and r.attempts == 2
    assert "exit code 13" in r.transcript[0]


@needs_processes
def test_hung_worker_times_out_and_recovers(tmp_path):
    registry = ProbeRegistry()
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("sim.hang", attempt=1),)))
    r = _one(sup.run_many_supervised(
        [_item()], isolation="process", timeout=2.0, backoff_base=0.01,
        store=RunStore(tmp_path / "s"), registry=registry))
    assert r.ok and r.attempts == 2
    assert "timed out after 2s" in r.transcript[0]
    assert registry.snapshot()["core.engine.timeouts"] == 1


# -- simulator guardrails --------------------------------------------------


def test_watchdog_raises_diagnostic_on_stall():
    spec = experiments.run_spec("specint", "smt", "app",
                                instructions=2_000, seed=31)
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("sim.stall", arg=2_000),)), env=False)
    with pytest.raises(NoProgressError) as info:
        experiments.execute_spec(spec)
    err = info.value
    assert err.retired == 0
    assert err.cycle >= 2_000
    assert isinstance(err.snapshot, dict) and err.snapshot
    assert "no instruction retired" in str(err)


def test_watchdog_does_not_perturb_results():
    spec = experiments.run_spec("specint", "smt", "app",
                                instructions=4_000, seed=37)
    plain = experiments.execute_spec(spec)
    watched = experiments.execute_spec(spec, watchdog_cycles=500)
    assert watched == plain  # chunked execution is result-identical


def test_max_cycles_truncates_and_flags():
    spec = experiments.run_spec("specint", "smt", "app",
                                instructions=1_000_000, seed=41)
    artifact = experiments.execute_spec(spec, max_cycles=3_000)
    assert artifact.total["retired"] < 1_000_000
    assert "truncated" in artifact.flags


def test_untruncated_run_has_no_flags():
    spec = experiments.run_spec("specint", "smt", "app",
                                instructions=1_500, seed=43)
    assert experiments.execute_spec(spec).flags == []


# -- heartbeat stall wrapper ----------------------------------------------


def test_stalling_sink_goes_silent():
    seen = []
    sink = sup._StallingSink(seen.append, after_beats=2)
    for i in range(5):
        sink({"beat": i})
    assert seen == [{"beat": 0}, {"beat": 1}]
