"""Tests for the durable job queue (repro.analysis.queue): journal
append/replay, checksums, torn-tail recovery, dedup, priorities,
admission control, and the byte-comparable ledger."""

import json

import pytest

from repro import faults
from repro.analysis import queue as jobqueue
from repro.analysis.queue import JobQueue, JournalError, record_check


@pytest.fixture(autouse=True)
def _disarmed():
    faults.clear()
    yield
    faults.clear()


def _spec(seed=1, instructions=1000):
    return {"workload": "specint", "cpu": "smt", "os_mode": "full",
            "instructions": instructions, "seed": seed}


def _records(q):
    return [json.loads(line)
            for line in q.journal_path.read_text().splitlines() if line]


# -- lifecycle + persistence ------------------------------------------------

def test_submit_claim_complete_lifecycle(tmp_path):
    q = JobQueue(tmp_path / "q")
    job, outcome = q.submit(_spec())
    assert outcome == "queued"
    assert job.state == jobqueue.PENDING
    claimed = q.claim("w0")
    assert claimed is job and job.state == jobqueue.CLAIMED
    assert job.worker == "w0" and job.attempts == 1
    q.complete(job.id)
    assert job.state == jobqueue.DONE
    assert q.counts()[jobqueue.DONE] == 1


def test_state_survives_reconstruction(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec(1))
    b, _ = q.submit(_spec(2))
    q.claim("w0")
    q.complete(a.id)

    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.records == 4
    assert q2.jobs[a.id].state == jobqueue.DONE
    assert q2.jobs[b.id].state == jobqueue.PENDING
    assert q2.ledger() == q.ledger()


def test_journal_records_carry_valid_checksums(tmp_path):
    q = JobQueue(tmp_path / "q")
    q.submit(_spec())
    for body in _records(q):
        assert body["check"] == record_check(body)


def test_journal_is_wall_clock_free(tmp_path):
    q = JobQueue(tmp_path / "q")
    job, _ = q.submit(_spec())
    q.claim("w0")
    q.complete(job.id)
    q.mark_shutdown(clean=True, drained=False)
    for body in _records(q):
        for key in body:
            assert key not in ("time", "ts", "timestamp", "pid", "mtime")


# -- torn / corrupt tails ---------------------------------------------------

def test_torn_tail_truncated_on_replay(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec(1))
    q.submit(_spec(2))
    # Simulate a crash mid-append: half a record, no newline.
    with open(q.journal_path, "a") as f:
        f.write('{"seq": 3, "op": "cla')

    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.records == 2
    assert q2.replayed.torn_records == 1
    # The journal was rewritten to the valid prefix...
    assert len(_records(q2)) == 2
    # ...and appending picks up a fresh, valid sequence number.
    q2.claim("w0")
    q3 = JobQueue(tmp_path / "q")
    assert q3.replayed.torn_records == 0
    assert q3.jobs[a.id].state == jobqueue.CLAIMED


def test_tampered_record_invalidates_itself_and_the_suffix(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec(1))
    b, _ = q.submit(_spec(2))
    q.claim("w0")
    lines = q.journal_path.read_text().splitlines()
    lines[1] = lines[1].replace('"outcome": "queued"',
                                '"outcome": "doctored"')
    q.journal_path.write_text("\n".join(lines) + "\n")

    q2 = JobQueue(tmp_path / "q")
    # Record 2 fails its checksum: it AND the valid-looking claim after
    # it are dropped (a prefix log never trusts anything past a tear).
    assert q2.replayed.records == 1
    assert q2.replayed.torn_records == 2
    assert a.id in q2.jobs and b.id not in q2.jobs
    assert q2.jobs[a.id].state == jobqueue.PENDING


def test_version_drift_refuses_to_replay(tmp_path):
    q = JobQueue(tmp_path / "q")
    q.submit(_spec())
    body = _records(q)[0]
    body["v"] = 999
    body["check"] = record_check(body)
    q.journal_path.write_text(json.dumps(body, sort_keys=True) + "\n")
    with pytest.raises(JournalError, match="version"):
        JobQueue(tmp_path / "q")


# -- dedup / admission ------------------------------------------------------

def test_identical_spec_coalesces(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, first = q.submit(_spec())
    b, second = q.submit(_spec())
    assert first == "queued" and second == "coalesced"
    assert a is b and a.coalesced == 1
    assert q.pending_count() == 1


def test_completed_spec_reports_done(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec())
    q.claim("w0")
    q.complete(a.id)
    again, outcome = q.submit(_spec())
    assert outcome == "done" and again is a


def test_quarantined_spec_reopens_on_resubmit(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec())
    q.claim("w0")
    q.quarantine(a.id, "boom")
    again, outcome = q.submit(_spec())
    assert outcome == "queued" and again.state == jobqueue.PENDING
    assert again.error is None
    # Replay rebuilds the same state: the resubmit also clears the
    # stale quarantine error in the journaled incarnation.
    replayed = JobQueue(tmp_path / "q").jobs[a.id]
    assert replayed.state == jobqueue.PENDING and replayed.error is None
    assert replayed.to_public_dict() == again.to_public_dict()
    # An ordinary retry requeue keeps the last attempt's error visible.
    q.claim("w0")
    q.fail(a.id, "flaky", "transient")
    q.requeue(a.id, "retry")
    assert q.jobs[a.id].error == "flaky"
    assert JobQueue(tmp_path / "q").jobs[a.id].error == "flaky"


def test_backlog_limit_sheds(tmp_path):
    q = JobQueue(tmp_path / "q", limit=2)
    q.submit(_spec(1))
    q.submit(_spec(2))
    job, outcome = q.submit(_spec(3))
    assert outcome == "shed" and job is None
    assert q.shed_count == 1
    # The shed is durable: a new incarnation still knows about it.
    assert JobQueue(tmp_path / "q", limit=2).shed_count == 1
    # Duplicates of queued work coalesce instead of shedding.
    _, outcome = q.submit(_spec(1))
    assert outcome == "coalesced"


def test_priority_orders_claims_fifo_within_priority(tmp_path):
    q = JobQueue(tmp_path / "q")
    low1, _ = q.submit(_spec(1), priority=0)
    high, _ = q.submit(_spec(2), priority=5)
    low2, _ = q.submit(_spec(3), priority=0)
    order = [q.claim("w0").id for _ in range(3)]
    assert order == [high.id, low1.id, low2.id]


# -- recovery ---------------------------------------------------------------

def test_claimed_jobs_reported_as_orphans_on_replay(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec(1))
    q.submit(_spec(2))
    q.claim("w0")

    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.orphans == [a.id]
    q2.requeue(a.id, "orphan")
    assert q2.jobs[a.id].state == jobqueue.PENDING
    assert q2.claim("w0").attempts == 2  # attempt count survived


def test_fail_keeps_job_claimed_until_routed(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec())
    q.claim("w0")
    q.fail(a.id, "worker died", "transient")
    assert a.state == jobqueue.CLAIMED and a.error == "worker died"
    q.requeue(a.id, "retry")
    assert a.state == jobqueue.PENDING
    q2 = JobQueue(tmp_path / "q")
    assert q2.jobs[a.id].state == jobqueue.PENDING


def test_shutdown_marker_survives_replay(tmp_path):
    q = JobQueue(tmp_path / "q")
    q.submit(_spec())
    q.mark_shutdown(clean=True, drained=True)
    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.clean_shutdown and q2.replayed.drained


def test_ledger_is_order_independent_and_stateful(tmp_path):
    qa = JobQueue(tmp_path / "a")
    qa.submit(_spec(1))
    qa.submit(_spec(2))
    qb = JobQueue(tmp_path / "b")
    qb.submit(_spec(2))
    qb.submit(_spec(1))
    assert qa.ledger() == qb.ledger()
    qa.complete(qa.claim("w0").id)
    assert qa.ledger() != qb.ledger()  # state is part of the ledger
    qa.complete(qa.claim("w0").id)
    for _ in range(2):
        qb.complete(qb.claim("w9").id)
    # Claim order and worker names are not part of the ledger.
    assert qa.ledger() == qb.ledger()


# -- fault sites ------------------------------------------------------------

def test_torn_journal_fault_leaves_half_a_record(tmp_path):
    q = JobQueue(tmp_path / "q")
    q.submit(_spec(1))
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("queue.journal.torn", times=1),)), env=False)
    with pytest.raises(faults.InjectedFault, match="mid-append"):
        q.submit(_spec(2))
    faults.clear()
    raw = q.journal_path.read_text()
    assert not raw.endswith("\n")  # the tear really is torn
    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.records == 1 and q2.replayed.torn_records == 1


def test_orphan_claim_fault_journals_but_returns_none(tmp_path):
    q = JobQueue(tmp_path / "q")
    a, _ = q.submit(_spec())
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("queue.claim.orphan", times=1),)), env=False)
    assert q.claim("w0") is None
    faults.clear()
    assert a.state == jobqueue.CLAIMED  # durably claimed, nobody tracking
    q2 = JobQueue(tmp_path / "q")
    assert q2.replayed.orphans == [a.id]


def test_queue_limit_validation(tmp_path):
    with pytest.raises(ValueError, match="limit"):
        JobQueue(tmp_path / "q", limit=0)
