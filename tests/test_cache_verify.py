"""Tests for ``repro cache ls --verify`` (runtime fingerprint audit)."""

import json

import pytest

from repro.analysis.experiments import build_simulation, run_windowed
from repro.analysis.store import RunStore
from repro.cli import _cache_verify


@pytest.fixture(scope="module")
def tiny_artifact():
    sim = build_simulation("specint", "smt", "full", seed=47)
    startup, steady, total = run_windowed(sim, budget=40_000)
    return sim.to_artifact(startup, steady, total,
                           spec_extra={"workload": "specint", "cpu": "smt",
                                       "os_mode": "full",
                                       "instructions": 40_000, "seed": 47})


def test_verify_clean_store(tmp_path, tiny_artifact, capsys):
    store = RunStore(tmp_path)
    store.put(tiny_artifact)
    assert _cache_verify(store) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "MISMATCH" not in out


def test_verify_flags_spec_tamper(tmp_path, tiny_artifact, capsys):
    store = RunStore(tmp_path)
    path = store.put(tiny_artifact)
    payload = json.loads(path.read_text())
    payload["spec"]["seed"] = 999  # stored identity no longer matches spec
    path.write_text(json.dumps(payload))
    assert _cache_verify(store) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_verify_flags_unreadable_entry(tmp_path, tiny_artifact, capsys):
    store = RunStore(tmp_path)
    path = store.put(tiny_artifact)
    path.write_text("{not json")
    assert _cache_verify(store) == 1
    assert "UNREADABLE" in capsys.readouterr().out


def test_verify_empty_store(tmp_path, capsys):
    store = RunStore(tmp_path)
    assert _cache_verify(store) == 0
