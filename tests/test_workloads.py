"""Tests for workload construction and behavior scripts."""

import random

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.kernel import MiniDUX
from repro.workloads.apache import MMAP_THRESHOLD, ApacheWorkload
from repro.workloads.specint import SPECINT_PROGRAMS, SpecIntWorkload


@pytest.fixture
def osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=4, rng=random.Random(6))


def test_specint_has_eight_programs():
    assert len(SPECINT_PROGRAMS) == 8
    names = {p.name for p in SPECINT_PROGRAMS}
    assert names == {"gcc", "go", "li", "perl", "compress", "m88ksim",
                     "ijpeg", "vortex"}


def test_specint_profiles_are_valid_mixes():
    for p in SPECINT_PROGRAMS:
        total = p.load + p.store + p.branch + p.fp
        assert total < 1.0
        assert p.heap_hot_pages <= p.heap_pages
        assert p.hot_blocks <= p.n_blocks


def test_specint_setup_creates_processes(osk):
    wl = SpecIntWorkload()
    wl.setup(osk, osk.hierarchy, random.Random(7))
    assert len(wl.threads) == 8
    names = {t.name for t in wl.threads}
    assert "gcc" in names
    # Every thread is schedulable and owns a distinct address space.
    pids = {t.process.pid for t in wl.threads}
    assert len(pids) == 8


def test_specint_not_warm_until_marks(osk):
    wl = SpecIntWorkload()
    wl.setup(osk, osk.hierarchy, random.Random(7))
    assert not wl.warmed_up(osk)
    for p in SPECINT_PROGRAMS:
        osk.thread_phase[p.name] = "steady"
    assert wl.warmed_up(osk)


def test_specint_behavior_phases(osk):
    wl = SpecIntWorkload()
    wl.setup(osk, osk.hierarchy, random.Random(7))
    thread = wl.threads[0]
    directives = [next(thread.behavior) for _ in range(6)]
    kinds = [d[0] for d in directives]
    assert kinds[0] == "mark"
    assert "syscall" in kinds


def test_apache_setup_creates_everything(osk):
    wl = ApacheWorkload(n_servers=6, n_clients=8, n_netisr=2)
    wl.setup(osk, osk.hierarchy, random.Random(8))
    assert len(wl.threads) == 6
    assert len(wl.stack.netisr_threads) == 2
    assert wl.clients.n_clients == 8
    assert len(wl.fileset.files) == 36
    # Server processes share one text segment.
    models = {t.user_walker.model for t in wl.threads}
    assert len(models) == 1


def test_apache_not_warm_until_responses(osk):
    wl = ApacheWorkload(n_servers=2, n_clients=2)
    wl.setup(osk, osk.hierarchy, random.Random(8))
    assert not wl.warmed_up(osk)
    wl.clients.responses_completed = wl.warmup_responses
    assert wl.warmed_up(osk)


def test_apache_mmap_threshold_splits_fileset(osk):
    wl = ApacheWorkload(n_servers=1)
    wl.setup(osk, osk.hierarchy, random.Random(8))
    sizes = [f.size for f in wl.fileset.files]
    assert any(s >= MMAP_THRESHOLD for s in sizes)
    assert any(s < MMAP_THRESHOLD for s in sizes)


def test_apache_server_behavior_requests_flow(osk):
    wl = ApacheWorkload(n_servers=1, n_clients=1)
    wl.setup(osk, osk.hierarchy, random.Random(8))
    thread = wl.threads[0]
    # First directive (possibly after a select) must be the accept.
    d = next(thread.behavior)
    while d[0] == "syscall" and d[1] == "select":
        d = next(thread.behavior)
    assert d[0] == "syscall" and d[1] == "accept"
    # Blocked accept: the block predicate is true with no pending conns.
    assert d[2]["block_if"]()
