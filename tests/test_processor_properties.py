"""Property-based tests on pipeline invariants, driven by randomized
scripted instruction streams."""

import random
from collections import deque

from hypothesis import given, settings, strategies as st

from repro.core.config import CPUConfig
from repro.core.processor import Processor
from repro.core.stats import SimStats
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy

FAST = MemoryConfig(l1_fill_penalty=1, l2_latency=2, mem_latency=4,
                    l1l2_bus_latency=0, mem_bus_latency=0)

_KINDS = (InstrType.INT_ALU, InstrType.LOAD, InstrType.STORE,
          InstrType.FP_ALU, InstrType.COND_BRANCH)


class _Stream:
    def __init__(self, instrs):
        self.queue = deque(instrs)
        self.replay = deque()
        self.current_service = "user"

    def next_instruction(self, now):
        if self.replay:
            return self.replay.popleft()
        return self.queue.popleft() if self.queue else None

    def push_replay(self, instrs):
        self.replay.extend(instrs)


def _random_program(rng, n, base_pc):
    out = []
    pc = base_pc
    for _ in range(n):
        kind = rng.choice(_KINDS)
        if kind is InstrType.COND_BRANCH:
            taken = rng.random() < 0.6
            target = pc + (64 if taken else 4)
            out.append(Instruction(kind, Mode.USER, "user", pc,
                                   taken=taken, target=target,
                                   dep=rng.random() < 0.4))
            pc = target
        elif kind in (InstrType.LOAD, InstrType.STORE):
            out.append(Instruction(kind, Mode.USER, "user", pc,
                                   addr=base_pc + rng.randrange(0, 1 << 14, 8),
                                   dep=rng.random() < 0.4))
            pc += 4
        else:
            lat = 4 if kind is InstrType.FP_ALU else 1
            out.append(Instruction(kind, Mode.USER, "user", pc, latency=lat,
                                   dep=rng.random() < 0.4))
            pc += 4
    return out


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_contexts=st.sampled_from([1, 2, 4]),
       length=st.integers(10, 120))
def test_pipeline_invariants_hold_for_random_programs(seed, n_contexts, length):
    rng = random.Random(seed)
    streams = [_Stream(_random_program(rng, length, 0x1_0000_0000 * (c + 1)))
               for c in range(n_contexts)]
    cfg = CPUConfig(n_contexts=n_contexts, fetch_contexts=min(2, n_contexts),
                    pipeline_stages=7 if n_contexts == 1 else 9)
    stats = SimStats(n_contexts)
    proc = Processor(cfg, streams, MemoryHierarchy(FAST), stats,
                     random.Random(seed + 1))
    for t in range(2500):
        proc.cycle(t)
        assert 0 <= proc.inflight <= cfg.inflight_limit
        assert 0 <= proc.int_count <= cfg.int_queue
        assert 0 <= proc.fp_count <= cfg.fp_queue
        if stats.retired == length * n_contexts:
            break
    # Every instruction eventually retires exactly once.
    assert stats.retired == length * n_contexts
    assert proc.inflight == 0
    assert proc.int_count == 0 and proc.fp_count == 0
    for ctx in proc.contexts:
        assert not ctx.rob
        assert ctx.queued == 0
    # Accounting identity: fetches cover retires plus squash events.
    assert stats.fetched >= stats.retired
    assert stats.fetched >= stats.retired + stats.squashed
