"""Tests for the McFarling hybrid predictor."""

import pytest

from repro.branch.mcfarling import McFarlingPredictor, _counter_update


def test_counter_saturates():
    assert _counter_update(3, True) == 3
    assert _counter_update(0, False) == 0
    assert _counter_update(1, True) == 2
    assert _counter_update(2, False) == 1


def test_table_sizes_validated():
    with pytest.raises(ValueError):
        McFarlingPredictor(local_hist_entries=1000)  # not a power of two


def test_learns_always_taken_branch():
    # Histories must saturate before the counters stabilize (the global
    # history register shifts on every update), so train past that point.
    p = McFarlingPredictor()
    pc = 0x4000
    for _ in range(40):
        pred = p.predict(pc)
        p.update(pc, True, predicted=pred)
    assert p.predict(pc) is True


def test_learns_never_taken_branch():
    p = McFarlingPredictor()
    pc = 0x4000
    for _ in range(40):
        pred = p.predict(pc)
        p.update(pc, False, predicted=pred)
    assert p.predict(pc) is False


def test_learns_alternating_pattern_via_history():
    # T,N,T,N... is perfectly predictable with local history.
    p = McFarlingPredictor()
    pc = 0x8000
    outcome = True
    for _ in range(200):
        pred = p.predict(pc)
        p.update(pc, outcome, predicted=pred)
        outcome = not outcome
    correct = 0
    for _ in range(40):
        pred = p.predict(pc)
        correct += pred == outcome
        p.update(pc, outcome, predicted=pred)
        outcome = not outcome
    assert correct >= 35


def test_misprediction_rate_accounting():
    p = McFarlingPredictor()
    pc = 0x4000
    for _ in range(60):
        pred = p.predict(pc)
        p.update(pc, True, predicted=pred)
    assert p.predictions == 60
    assert 0 <= p.misprediction_rate < 0.5


def test_update_without_prediction_does_not_count_mispredicts():
    p = McFarlingPredictor()
    p.update(0x100, True)
    assert p.mispredictions == 0
    assert p.predictions == 1


def test_shared_history_interferes_across_contexts():
    # With a shared GHR, another context's updates perturb predictions;
    # with per-context history they cannot.  We verify the *mechanism*:
    # per-context predictors keep separate registers.
    shared = McFarlingPredictor(n_contexts=2, per_context_history=False)
    split = McFarlingPredictor(n_contexts=2, per_context_history=True)
    for predictor in (shared, split):
        for _ in range(50):
            predictor.update(0x100, True, ctx=0)
    # Scramble context 1's history.
    for predictor in (shared, split):
        for _ in range(7):
            predictor.update(0x999, False, ctx=1)
    assert split._ghr[0] != split._ghr[1]
    assert len(shared._ghr) == 1
