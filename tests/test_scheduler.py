"""Tests for the SMP-style scheduler and ASN management."""

import random

from repro.os_model.address_space import AddressSpace
from repro.os_model.scheduler import Scheduler
from repro.os_model.thread import SoftwareThread, ThreadState


def make_thread(tid, name="t", priority=1):
    thread = SoftwareThread(tid, f"{name}{tid}", AddressSpace(pid=tid, name=f"p{tid}"))
    thread.priority = priority
    return thread


def make_sched(n=2, quantum=100):
    flushed = []
    sched = Scheduler(n, quantum, random.Random(0), asn_count=4)
    sched.flush_asn = flushed.append
    for ctx in range(n):
        idle = make_thread(900 + ctx, "idle")
        sched.set_idle_thread(ctx, idle)
    return sched, flushed


def test_pick_next_falls_back_to_idle():
    sched, _ = make_sched()
    thread = sched.pick_next(0)
    assert thread is sched.idle[0]


def test_make_ready_and_install():
    sched, _ = make_sched()
    t = make_thread(1)
    sched.make_ready(t)
    picked = sched.pick_next(0)
    assert picked is t
    sched.install(0, picked, now=0)
    assert sched.current[0] is t
    assert t.state is ThreadState.RUNNING


def test_make_ready_idempotent():
    sched, _ = make_sched()
    t = make_thread(1)
    sched.make_ready(t)
    sched.make_ready(t)
    assert sched.run_queue.count(t) == 1


def test_install_requeues_displaced_runnable_thread():
    sched, _ = make_sched()
    a, b = make_thread(1), make_thread(2)
    sched.make_ready(a)
    sched.make_ready(b)
    sched.install(0, sched.pick_next(0), now=0)
    displaced = sched.install(0, sched.pick_next(0), now=10)
    assert displaced is a
    assert a in sched.run_queue


def test_quantum_drives_should_resched():
    sched, _ = make_sched(quantum=50)
    a, b = make_thread(1), make_thread(2)
    sched.make_ready(a)
    sched.make_ready(b)
    sched.install(0, sched.pick_next(0), now=0)
    assert not sched.should_resched(0, now=10)
    assert sched.should_resched(0, now=60)


def test_no_resched_on_quantum_without_waiters():
    sched, _ = make_sched(quantum=50)
    a = make_thread(1)
    sched.make_ready(a)
    sched.install(0, sched.pick_next(0), now=0)
    assert not sched.should_resched(0, now=500)


def test_blocked_thread_triggers_resched():
    sched, _ = make_sched()
    a = make_thread(1)
    sched.make_ready(a)
    sched.install(0, sched.pick_next(0), now=0)
    a.block("wait")
    assert sched.should_resched(0, now=1)


def test_idle_preempted_when_work_arrives():
    sched, _ = make_sched()
    sched.install(0, sched.pick_next(0), now=0)  # idle
    t = make_thread(1)
    sched.make_ready(t)
    assert sched.should_resched(0, now=1)


def test_high_priority_preempts_timeshare():
    sched, _ = make_sched(quantum=10_000)
    user = make_thread(1)
    sched.make_ready(user)
    sched.install(0, sched.pick_next(0), now=0)
    daemon = make_thread(2, priority=0)
    sched.make_ready(daemon)
    assert sched.should_resched(0, now=1)
    assert sched.pick_next(0) is daemon


def test_bound_thread_only_runs_on_its_context():
    sched, _ = make_sched()
    t = make_thread(1)
    t.bound_context = 1
    sched.make_ready(t)
    assert sched.pick_next(0) is sched.idle[0]
    assert sched.pick_next(1) is t


def test_asn_assignment_and_reuse():
    sched, flushed = make_sched()
    p1 = AddressSpace(pid=1, name="p1")
    assert sched.assign_asn(p1)
    first = p1.asn
    assert first > 0
    assert not sched.assign_asn(p1)  # stable on re-check
    assert p1.asn == first
    assert not flushed


def test_asn_recycling_flushes_victim():
    sched, flushed = make_sched()  # asn_count=4 -> 3 user slots
    procs = [AddressSpace(pid=i, name=f"p{i}") for i in range(5)]
    for p in procs:
        sched.assign_asn(p)
    assert sched.asn_recycles >= 2
    assert flushed  # the recycled ASNs were flushed from the TLBs
    # Victims lost their ASN.
    assert sum(1 for p in procs if p.asn == -1) == sched.asn_recycles


def test_asn_of_running_process_not_recycled():
    sched, _ = make_sched()
    running = make_thread(1)
    sched.make_ready(running)
    sched.assign_asn(running.process)
    sched.install(0, sched.pick_next(0), now=0)
    for i in range(2, 9):
        sched.assign_asn(AddressSpace(pid=i, name=f"p{i}"))
    assert running.process.asn > 0  # survived all recycling


def test_done_thread_never_enqueued():
    sched, _ = make_sched()
    t = make_thread(1)
    t.state = ThreadState.DONE
    sched.make_ready(t)
    assert t not in sched.run_queue
