"""Tests for instruction-mix descriptors."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.mix import BASE_LATENCY, BranchProfile, InstructionMix
from repro.isa.types import InstrType


def test_int_alu_is_remainder():
    mix = InstructionMix(load=0.2, store=0.1, branch=0.15, fp=0.05, sync=0.01)
    assert mix.int_alu == pytest.approx(1 - 0.2 - 0.1 - 0.15 - 0.05 - 0.01)


def test_overfull_mix_rejected():
    with pytest.raises(ValueError):
        InstructionMix(load=0.5, store=0.4, branch=0.3)


def test_negative_fraction_rejected():
    with pytest.raises(ValueError):
        InstructionMix(load=-0.1)


def test_mean_block_len_inverse_of_branch():
    mix = InstructionMix(branch=0.2)
    assert mix.mean_block_len == pytest.approx(5.0)


def test_zero_branch_mix_has_no_block_length():
    mix = InstructionMix(branch=0.0)
    with pytest.raises(ValueError):
        _ = mix.mean_block_len


def test_body_weights_normalized():
    mix = InstructionMix(load=0.2, store=0.1, branch=0.2, fp=0.1)
    weights = dict(mix.body_weights())
    assert sum(weights.values()) == pytest.approx(1.0)
    # Branches never appear inside block bodies.
    assert all(t is not InstrType.COND_BRANCH for t in weights)


def test_body_weights_drop_zero_categories():
    mix = InstructionMix(load=0.2, store=0.1, branch=0.2, fp=0.0, sync=0.0)
    cats = {t for t, _ in mix.body_weights()}
    assert InstrType.FP_ALU not in cats
    assert InstrType.SYNC not in cats


@given(
    load=st.floats(0, 0.3),
    store=st.floats(0, 0.2),
    branch=st.floats(0.05, 0.3),
    fp=st.floats(0, 0.2),
)
def test_body_weights_always_normalized(load, store, branch, fp):
    mix = InstructionMix(load=load, store=store, branch=branch, fp=fp)
    total = sum(w for _, w in mix.body_weights())
    assert total == pytest.approx(1.0, abs=1e-9)


def test_branch_profile_cond_is_remainder():
    p = BranchProfile(uncond=0.2, indirect=0.1, call=0.05, ret=0.05)
    assert p.cond == pytest.approx(0.6)


def test_branch_profile_cond_never_negative():
    p = BranchProfile(uncond=0.5, indirect=0.4, call=0.1, ret=0.1)
    assert p.cond == 0.0


def test_base_latency_covers_all_types():
    for itype in InstrType:
        assert itype in BASE_LATENCY
        assert BASE_LATENCY[itype] >= 1


def test_phys_frac_validation():
    with pytest.raises(ValueError):
        InstructionMix(phys_frac=-0.5)


def test_default_dep_prob_copied_per_mix():
    a = InstructionMix()
    b = InstructionMix()
    a.dep_prob[InstrType.LOAD] = 0.99
    assert b.dep_prob[InstrType.LOAD] != 0.99
