"""Tests for the synthetic workload kit and parameter sweeps."""

import pytest

from repro.analysis.sweeps import (
    DEFAULT_METRICS,
    Sweep,
    SweepPoint,
    cache_scale_sweep,
    context_sweep,
    quantum_sweep,
    run_sweep,
)
from repro.core.simulator import Simulation
from repro.workloads.synthetic import SyntheticProgram, SyntheticWorkload


def test_program_validation():
    with pytest.raises(ValueError):
        SyntheticProgram("x", syscall="frobnicate")
    with pytest.raises(ValueError):
        SyntheticProgram("x", syscall_rate=2.0)
    with pytest.raises(ValueError):
        SyntheticWorkload([])


def test_dep_heavy_raises_dependence():
    light = SyntheticProgram("a").mix()
    heavy = SyntheticProgram("a", dep_heavy=True).mix()
    from repro.isa.types import InstrType
    assert heavy.dep_prob[InstrType.LOAD] > light.dep_prob[InstrType.LOAD]


def test_synthetic_workload_runs():
    wl = SyntheticWorkload([
        SyntheticProgram("chaser", dep_heavy=True),
        SyntheticProgram("logger", syscall_rate=1.0, syscall="write",
                         compute_chunk=800),
    ])
    result = Simulation(wl, seed=77).run(max_instructions=60_000)
    assert result.stats.retired >= 60_000
    assert len(wl.threads) == 2
    # The logger issued its system call.
    assert result.os.syscall_counts.get("write", 0) > 0


def test_dep_heavy_program_is_slower():
    def run(dep_heavy):
        wl = SyntheticWorkload([SyntheticProgram("p", dep_heavy=dep_heavy)])
        sim = Simulation(wl, seed=78)
        sim.run(max_instructions=30_000)   # boot + first-touch warm-up
        before = (sim.stats.retired, sim.stats.cycles)
        sim.run(max_instructions=60_000)
        return (sim.stats.retired - before[0]) / (sim.stats.cycles - before[1])

    assert run(True) < run(False)


def test_warmed_up_tracks_marks():
    wl = SyntheticWorkload([SyntheticProgram("p", touch_pages_on_start=1)])
    sim = Simulation(wl, seed=79)
    assert not wl.warmed_up(sim.os)
    # A sparse workload shares the machine with idle/boot activity, so give
    # the single program room to clear its first-touch storm.
    sim.run(max_instructions=90_000)
    assert wl.warmed_up(sim.os)


def test_run_sweep_collects_metrics():
    wl_points = []

    def build(value):
        wl = SyntheticWorkload([SyntheticProgram("p", compute_chunk=value)])
        wl_points.append(value)
        return Simulation(wl, seed=80)

    sweep = run_sweep("test", "chunk", [2000, 4000], build,
                      instructions=15_000)
    assert wl_points == [2000, 4000]
    assert len(sweep.points) == 2
    for point in sweep.points:
        assert set(point.metrics) == set(DEFAULT_METRICS)
        assert point.metrics["ipc"] > 0


def test_sweep_series_and_render():
    sweep = Sweep("s", "x", [SweepPoint(1, {"ipc": 2.0}),
                             SweepPoint(2, {"ipc": 3.0})])
    assert sweep.series("ipc") == [(1, 2.0), (2, 3.0)]
    text = sweep.render("ipc")
    assert "x=1" in text and "3.000" in text


def test_context_sweep_shows_smt_gain():
    sweep = context_sweep("specint", contexts=(1, 4), instructions=40_000)
    series = dict(sweep.series("ipc"))
    assert series[4] > series[1]


def test_quantum_sweep_runs():
    sweep = quantum_sweep("specint", quanta=(10_000,), instructions=20_000)
    assert len(sweep.points) == 1


def test_cache_scale_sweep_directionality():
    sweep = cache_scale_sweep("specint", scales=(0.25, 2.0),
                              instructions=40_000)
    series = dict(sweep.series("l1d_miss"))
    assert series[0.25] >= series[2.0]
