"""Tests for the export module plus cross-module consistency invariants."""

import json

import pytest

from repro.analysis import experiments
from repro.analysis.export import (
    record_to_json,
    summarize_window,
    sweep_to_csv,
    timeline_to_csv,
    window_to_json,
)
from repro.analysis.sweeps import Sweep, SweepPoint
from repro.core.config import MachineConfig
from repro.os_model.kernel import KERNEL_SEGMENTS
from repro.os_model.syscalls import SYSCALL_CATALOG, catalog_segments


@pytest.fixture(scope="module")
def record():
    experiments.clear_cache()
    rec = experiments.get_run("specint", "smt", "full",
                              instructions=50_000, seed=93)
    yield rec
    experiments.clear_cache()


@pytest.fixture(scope="module")
def live_sim():
    """A small live simulation for invariants that need real OS handles
    (run artifacts are plain data and carry none)."""
    sim = experiments.build_simulation("specint", "smt", "full", seed=93)
    sim.run(max_instructions=20_000)
    return sim


def test_summarize_window_keys(record):
    summary = summarize_window(record.total)
    assert summary["instructions"] == record.total["retired"]
    assert 0 < summary["ipc"] <= 8
    assert set(summary["miss_rates"]) == {"L1I", "L1D", "L2", "DTLB", "ITLB", "BTB"}
    assert abs(sum(summary["class_shares"].values()) - 1.0) < 1e-9


def test_window_to_json_roundtrip(tmp_path, record):
    path = window_to_json(record.steady, tmp_path / "w.json")
    data = json.loads(path.read_text())
    assert data["cycles"] == record.steady["cycles"]


def test_record_to_json(tmp_path, record):
    path = record_to_json(record, tmp_path / "r.json")
    data = json.loads(path.read_text())
    assert set(data) == {"spec", "fingerprint", "startup", "steady", "total"}
    assert data["fingerprint"] == record.fingerprint
    assert (data["startup"]["instructions"] + data["steady"]["instructions"]
            == data["total"]["instructions"])


def test_timeline_to_csv(tmp_path, record):
    path = timeline_to_csv(record, tmp_path / "t.csv")
    lines = path.read_text().splitlines()
    assert lines[0] == "cycle,user,kernel,pal,idle"
    assert len(lines) > 1


def test_sweep_to_csv(tmp_path):
    sweep = Sweep("s", "x", [SweepPoint(1, {"ipc": 2.0, "l1d_miss": 0.03})])
    path = sweep_to_csv(sweep, tmp_path / "s.csv")
    lines = path.read_text().splitlines()
    assert lines[0] == "x,ipc,l1d_miss"
    assert lines[1].startswith("1,2.0")


def test_sweep_to_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        sweep_to_csv(Sweep("s", "x", []), tmp_path / "s.csv")


# -- cross-module invariants --------------------------------------------------


def test_every_catalog_segment_exists_in_kernel_text():
    kernel_segments = {spec.name for spec in KERNEL_SEGMENTS}
    assert catalog_segments() <= kernel_segments


def test_every_syscall_has_positive_cost():
    for spec in SYSCALL_CATALOG.values():
        assert spec.base_cost > 0
        assert spec.copy_factor > 0


def test_kernel_text_segments_are_control_flow_closed(live_sim):
    model = live_sim.os.kernel_text
    for seg in model.segments.values():
        for b in range(seg.start, seg.end):
            assert seg.start <= model.fallthrough[b] < seg.end


def test_paper_scale_machine_preset():
    machine = MachineConfig.paper_scale()
    assert machine.memory.l1i_size == 128 * 1024
    assert machine.memory.l2_size == 16 * 1024 * 1024
    assert machine.cpu.btb_entries == 1024


def test_kernel_lock_names_known(live_sim):
    os_ = live_sim.os
    for spec in SYSCALL_CATALOG.values():
        if spec.lock is not None:
            assert spec.lock in os_.locks.DEFAULT_LOCKS


def test_all_services_classified(live_sim):
    """Every attribution label seen in a real run maps to a mode class."""
    from repro.core.stats import service_class
    for service in live_sim.stats.service_cycles:
        assert service_class(service) in (0, 1, 2, 3)
