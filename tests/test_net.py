"""Tests for the network substrate: packets, NIC, protocol stack."""

import random

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.net.packets import MTU, Packet, segment
from repro.net.stack import NetworkStack
from repro.os_model.kernel import MiniDUX
from repro.os_model.thread import ThreadState


@pytest.fixture
def osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(4))


@pytest.fixture
def stack(osk):
    return NetworkStack(osk, random.Random(5), n_netisr=2)


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(1, 0, "req")
    with pytest.raises(ValueError):
        Packet(1, 10, "weird")


def test_segmentation():
    assert segment(0) == []
    assert segment(100) == [100]
    assert segment(MTU) == [MTU]
    assert segment(MTU + 1) == [MTU, 1]
    assert sum(segment(123456)) == 123456


def test_new_connection_allocates_socket_buffer(stack, osk):
    conn = stack.new_connection(client_id=7, file_id=3, request_size=300)
    addr = stack.socket_buffer_address(conn.conn_id)
    assert osk.reg_sockbuf.contains(addr)


def test_socket_buffers_rotate(stack):
    conns = [stack.new_connection(0, 0, 100) for _ in range(4)]
    addrs = {stack.socket_buffer_address(c.conn_id) for c in conns}
    assert len(addrs) == 4


def test_nic_ring_addresses_in_phys_region(stack, osk):
    pkt = Packet(5, 200, "req")
    assert osk.reg_nicring.contains(stack.nic_ring_address(pkt))


def test_nic_coalesces_interrupts(stack, osk):
    nic = stack.nic
    conn = stack.new_connection(0, 0, 100)
    for _ in range(5):
        nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.tick(0)
    assert nic.interrupts_raised == 1
    nic.tick(1)   # inside the coalescing window: no second interrupt
    assert nic.interrupts_raised == 1
    nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.tick(nic.coalesce_interval + 1)
    assert nic.interrupts_raised == 2


def test_rx_path_wakes_netisr_and_queues_accept(stack, osk):
    conn = stack.new_connection(0, 0, 100)
    # Block the netisr threads first (as they would be, asleep).
    for t in stack.netisr_threads:
        if not t.frames:
            osk.sleep_on("netisr", t)
    stack.enqueue_rx([Packet(conn.conn_id, 100, "req")])
    assert any(t.runnable for t in stack.netisr_threads)
    # Process the packet through a netisr thread's directives.
    stack._rx_complete(Packet(conn.conn_id, 100, "req"))
    assert stack.has_pending_accept()
    popped = stack.pop_pending_accept()
    assert popped is conn
    assert not stack.has_pending_accept()
    assert stack.pop_pending_accept() is None


def test_ack_does_not_enter_accept_queue(stack):
    conn = stack.new_connection(0, 0, 100)
    stack._rx_complete(Packet(conn.conn_id, 40, "ack"))
    assert not stack.has_pending_accept()


def test_close_forgets_connection(stack):
    conn = stack.new_connection(0, 0, 100)
    stack.close(conn.conn_id)
    assert conn.conn_id not in stack.connections
    stack.close(conn.conn_id)  # idempotent


def test_transmit_reaches_remote_hook(stack):
    received = []
    stack.remote_rx = received.append
    pkt = Packet(1, 64, "resp")
    stack.transmit(pkt)
    assert received == [pkt]


def test_netisr_threads_created_at_high_priority(stack):
    assert len(stack.netisr_threads) == 2
    assert all(t.priority == 0 for t in stack.netisr_threads)
    assert all(t.state is not ThreadState.DONE for t in stack.netisr_threads)
