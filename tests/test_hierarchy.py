"""Tests for the assembled memory hierarchy."""

import pytest

from repro.memory.hierarchy import AccessResult, MemoryConfig, MemoryHierarchy


@pytest.fixture
def hier():
    return MemoryHierarchy(MemoryConfig())


def test_l1_hit_latency(hier):
    hier.data_access(0, 0x1000, 0, 0)           # warm the line
    res = hier.data_access(10, 0x1000, 0, 0)
    assert res.l1_hit
    assert res.latency == hier.config.l1_hit_latency


def test_l2_hit_latency_composition(hier):
    cfg = hier.config
    first = hier.data_access(0, 0x1000, 0, 0)   # cold: goes to memory
    assert not first.l2_hit
    assert first.latency >= cfg.mem_latency
    # Evict from L1 only by touching a *different* line, then the L2 path:
    # simulate by flushing the L1 line.
    hier.l1d.flush_address(0x1000)
    res = hier.data_access(100, 0x1000, 0, 0)
    assert not res.l1_hit and res.l2_hit
    assert cfg.l2_latency < res.latency < cfg.mem_latency


def test_memory_latency_dominates_cold_access(hier):
    res = hier.data_access(0, 0xABC000, 0, 0)
    assert res.latency >= hier.config.mem_latency
    assert not res.l1_hit and not res.l2_hit


def test_inst_access_hits_after_fill(hier):
    miss = hier.inst_access(0, 0x4000, 0, 0)
    assert not miss.l1_hit
    hit = hier.inst_access(50, 0x4000, 0, 0)
    assert hit.l1_hit and hit.latency == 0


def test_dcache_port_gate_limits_same_cycle_accesses(hier):
    hier.data_access(0, 0x1000, 0, 0)
    hier.data_access(5, 0x1000, 0, 0)
    hier.data_access(5, 0x1040, 0, 0)
    res = hier.data_access(5, 0x1080, 0, 0)  # third access in cycle 5
    assert res.latency > hier.config.l1_hit_latency or not res.l1_hit


def test_store_complete_uses_buffer(hier):
    t = hier.store_complete(7)
    assert t == 8  # immediate buffer entry + 1


def test_omit_kernel_refs_mode(hier):
    hier.omit_kernel_refs = True
    res = hier.data_access(0, 0x1000, 0, kind=1)
    assert res.l1_hit
    assert hier.l1d.stats.accesses == [0, 0]   # untouched by kernel refs
    # User references still go through.
    hier.data_access(0, 0x1000, 0, kind=0)
    assert hier.l1d.stats.accesses[0] == 1


def test_icache_flush_invalidates(hier):
    hier.inst_access(0, 0x4000, 0, 0)
    assert hier.icache_flush() == 1
    res = hier.inst_access(10, 0x4000, 0, 0)
    assert not res.l1_hit


def test_dma_write_invalidates_both_levels(hier):
    hier.data_access(0, 0x8000, 0, 0)
    assert hier.l1d.probe(0x8000)
    assert hier.l2.probe(0x8000)
    hier.dma_write(0x8000, 128)
    assert not hier.l1d.probe(0x8000)
    assert not hier.l2.probe(0x8000)


def test_paper_scale_geometry():
    cfg = MemoryConfig.paper_scale()
    assert cfg.l1i_size == 128 * 1024
    assert cfg.l2_size == 16 * 1024 * 1024
    h = MemoryHierarchy(cfg)
    assert h.l2.n_sets == cfg.l2_size // 64


def test_mshr_pressure_delays_misses():
    cfg = MemoryConfig(l1_mshrs=1)
    h = MemoryHierarchy(cfg)
    h.data_access(0, 0x10000, 0, 0)
    res = h.data_access(0, 0x20000, 0, 0)  # second concurrent miss
    assert res.latency > cfg.mem_latency  # queued behind the single MSHR


def test_access_result_is_value_object():
    r = AccessResult(5, True, True)
    assert r.latency == 5 and r.l1_hit and r.l2_hit
