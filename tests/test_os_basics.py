"""Tests for locks, VM system, address spaces, and interrupts."""

import random

import pytest

from repro.isa.data import PAGE_SIZE
from repro.os_model.address_space import (
    KERNEL_VIRT_BASE,
    AddressSpace,
    is_kernel_address,
    user_base,
)
from repro.os_model.interrupts import InterruptController, InterruptRequest
from repro.os_model.locks import LockTable
from repro.os_model.vm import VMSystem


# -- locks -----------------------------------------------------------------

def test_lock_acquire_release():
    locks = LockTable()
    assert locks.acquire("vfs", 1)
    assert locks.holder("vfs") == 1
    locks.release("vfs", 1)
    assert locks.holder("vfs") is None


def test_lock_contention_counted():
    locks = LockTable()
    locks.acquire("vfs", 1)
    assert not locks.acquire("vfs", 2)
    assert locks.contentions["vfs"] == 1
    assert locks.contention_rate("vfs") == pytest.approx(0.5)


def test_lock_reentrant_for_same_thread():
    locks = LockTable()
    assert locks.acquire("net", 3)
    assert locks.acquire("net", 3)


def test_release_by_non_holder_raises():
    locks = LockTable()
    locks.acquire("vm", 1)
    with pytest.raises(RuntimeError):
        locks.release("vm", 2)


# -- VM system ------------------------------------------------------------------

def test_vm_first_touch_needs_allocation():
    vm = VMSystem(random.Random(0))
    assert vm.needs_allocation(1, 0x4000_0000)
    vm.allocate(1, 0x4000_0000)
    assert not vm.needs_allocation(1, 0x4000_0000)
    assert vm.incursions["page_allocation"] == 1


def test_vm_allocation_is_per_process():
    vm = VMSystem(random.Random(0))
    vm.allocate(1, 0x4000_0000)
    assert vm.needs_allocation(2, 0x4000_0000)


def test_vm_kernel_pages_never_allocate():
    vm = VMSystem(random.Random(0))
    assert not vm.needs_allocation(1, KERNEL_VIRT_BASE + 0x1000)


def test_vm_release_range_refaults():
    vm = VMSystem(random.Random(0))
    base = 0x5000_0000
    vm.allocate(1, base)
    vm.allocate(1, base + PAGE_SIZE)
    released = vm.release_range(1, base, 2)
    assert released == 2
    assert vm.needs_allocation(1, base)
    assert vm.incursions["mmap_unmap"] == 1


def test_vm_icache_flush_probability():
    always = VMSystem(random.Random(0), icache_flush_prob=1.0)
    never = VMSystem(random.Random(0), icache_flush_prob=0.0)
    assert always.allocate(1, 0x1000_2000)
    assert not never.allocate(1, 0x1000_2000)


def test_vm_unknown_incursion_type_rejected():
    vm = VMSystem(random.Random(0))
    with pytest.raises(ValueError):
        vm.record_incursion("bogus")
    with pytest.raises(ValueError):
        vm.allocate(1, 0x2000, kind="bogus")


# -- address spaces ----------------------------------------------------------------

def test_user_bases_disjoint():
    assert user_base(1) - user_base(0) >= 0x1_0000_0000
    with pytest.raises(ValueError):
        user_base(-1)


def test_is_kernel_address():
    assert is_kernel_address(KERNEL_VIRT_BASE)
    assert not is_kernel_address(user_base(3))


def test_address_space_regions_and_asn():
    asp = AddressSpace(pid=2, name="p2", asn=5)
    r = asp.region("heap", 0x10_0000, 8, 4)
    assert r.base == asp.base + 0x10_0000
    assert asp.regions == [r]
    assert asp.asn_for(r.base) == 5
    assert asp.asn_for(KERNEL_VIRT_BASE) == 0  # kernel global ASN


def test_address_space_region_alignment_check():
    asp = AddressSpace(pid=0, name="p0")
    with pytest.raises(ValueError):
        asp.region("bad", 0x1001, 4, 2)


# -- interrupt controller -----------------------------------------------------------

def test_interrupts_delivered_round_robin():
    ctl = InterruptController(3)
    delivered = []
    for i in range(3):
        ctl.post(InterruptRequest(f"i{i}", 100))
    ctl.dispatch(lambda ctx, req: delivered.append((ctx, req.label)) or True)
    assert [ctx for ctx, _ in delivered] == [0, 1, 2]
    assert ctl.delivered == {"i0": 1, "i1": 1, "i2": 1}


def test_interrupt_stays_pending_when_all_refuse():
    ctl = InterruptController(2)
    ctl.post(InterruptRequest("x", 10))
    count = ctl.dispatch(lambda ctx, req: False)
    assert count == 0
    assert len(ctl.pending) == 1


def test_interrupt_skips_refusing_context():
    ctl = InterruptController(2)
    ctl.post(InterruptRequest("x", 10))
    accepted = []
    ctl.dispatch(lambda ctx, req: (ctx == 1) and (accepted.append(ctx) or True))
    assert accepted == [1]
