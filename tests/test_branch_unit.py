"""Tests for the combined branch unit's prediction protocol."""

from repro.branch.unit import BranchUnit
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode


def make_branch(itype, pc=0x1000, taken=True, target=0x2000, mode=Mode.USER):
    return Instruction(itype, mode, "user", pc, taken=taken, target=target)


def train_taken(unit, pc, target, n=40):
    for _ in range(n):
        instr = make_branch(InstrType.COND_BRANCH, pc=pc, taken=True, target=target)
        pred = unit.predict(instr, 0)
        instr.predicted_taken = pred.taken
        unit.resolve(instr, 0)


def test_trained_taken_branch_predicts_with_target():
    unit = BranchUnit(1)
    train_taken(unit, 0x1000, 0x2000)
    instr = make_branch(InstrType.COND_BRANCH, taken=True)
    pred = unit.predict(instr, 0)
    assert pred.taken
    assert pred.next_pc == 0x2000
    assert not pred.mispredicted


def test_not_taken_branch_falls_through():
    unit = BranchUnit(1)
    instr = make_branch(InstrType.COND_BRANCH, taken=False, target=0x1004)
    pred = unit.predict(instr, 0)
    if not pred.taken:
        assert pred.next_pc == 0x1004
        assert not pred.mispredicted


def test_predicted_taken_with_btb_miss_falls_through():
    # Train the direction without ever inserting the target (resolve on a
    # not-yet-taken path is impossible, so we hand-train the predictor).
    unit = BranchUnit(1)
    for _ in range(40):
        unit.predictor.update(0x1000, True)
    instr = make_branch(InstrType.COND_BRANCH, pc=0x1000, taken=True, target=0x2000)
    pred = unit.predict(instr, 0)
    assert pred.taken
    assert pred.next_pc == 0x1004       # fall-through default on BTB miss
    assert pred.mispredicted            # actual target was 0x2000


def test_direction_stats_by_mode():
    unit = BranchUnit(1)
    instr = make_branch(InstrType.COND_BRANCH, mode=Mode.KERNEL)
    unit.predict(instr, 0)
    assert unit.cond_predictions == [0, 1]


def test_count_false_suppresses_stats():
    unit = BranchUnit(1)
    instr = make_branch(InstrType.COND_BRANCH)
    unit.predict(instr, 0, count=False)
    assert unit.cond_predictions == [0, 0]
    assert sum(unit.btb.stats.accesses) == 0


def test_uncond_never_mispredicts():
    unit = BranchUnit(1)
    instr = make_branch(InstrType.UNCOND_BRANCH, target=0x3000)
    pred = unit.predict(instr, 0)
    assert pred.next_pc == 0x3000
    assert not pred.mispredicted


def test_call_pushes_then_return_pops():
    unit = BranchUnit(1)
    call = make_branch(InstrType.CALL, pc=0x1000, target=0x5000)
    unit.predict(call, 0)
    ret = make_branch(InstrType.RETURN, pc=0x5100, target=0x1004)
    pred = unit.predict(ret, 0)
    assert pred.next_pc == 0x1004
    assert not pred.mispredicted


def test_return_with_empty_stack_mispredicts():
    unit = BranchUnit(1)
    ret = make_branch(InstrType.RETURN, pc=0x5100, target=0x1004)
    pred = unit.predict(ret, 0)
    assert pred.mispredicted  # fallthrough 0x5104 != 0x1004


def test_indirect_needs_correct_btb_target():
    unit = BranchUnit(1)
    jmp = make_branch(InstrType.INDIRECT_JUMP, pc=0x1000, target=0x7000)
    pred = unit.predict(jmp, 0)
    assert pred.mispredicted  # BTB cold
    unit.resolve(jmp, 0)
    pred2 = unit.predict(make_branch(InstrType.INDIRECT_JUMP, pc=0x1000,
                                     target=0x7000), 0)
    assert not pred2.mispredicted
    # Target change: stale BTB entry mispredicts and is counted.
    pred3 = unit.predict(make_branch(InstrType.INDIRECT_JUMP, pc=0x1000,
                                     target=0x9000), 0)
    assert pred3.mispredicted
    assert unit.btb.target_mispredicts[0] == 1


def test_pal_transfers_never_mispredict():
    unit = BranchUnit(1)
    pal = make_branch(InstrType.PAL_CALL, target=0xF000, mode=Mode.KERNEL)
    pred = unit.predict(pal, 0)
    assert not pred.mispredicted
    assert pred.next_pc == 0xF000


def test_clear_context_resets_ras():
    unit = BranchUnit(2)
    unit.predict(make_branch(InstrType.CALL, pc=0x1000, target=0x5000), 1)
    unit.clear_context(1)
    ret = make_branch(InstrType.RETURN, pc=0x5100, target=0x1004)
    assert unit.predict(ret, 1).mispredicted


def test_misprediction_rate_overall_and_by_kind():
    unit = BranchUnit(1)
    taken = make_branch(InstrType.COND_BRANCH, taken=True)
    pred = unit.predict(taken, 0)
    rate = unit.misprediction_rate()
    assert 0.0 <= rate <= 1.0
    assert unit.misprediction_rate(1) == 0.0
