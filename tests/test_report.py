"""Tests for the full-report builder."""

import pytest

from repro.analysis import experiments
from repro.analysis.report import Report, build_report


@pytest.fixture(autouse=True)
def tiny(monkeypatch):
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


def test_build_report_contains_all_exhibits():
    report = build_report()
    assert set(report.exhibits) == {
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9",
    }
    assert report.shape_criteria_total > 10
    assert 0 <= report.shape_criteria_held <= report.shape_criteria_total
    assert "Table 6" in report.text


def test_report_write(tmp_path):
    report = Report(
        exhibits={"tab2": {"text": "Table 2 body"}},
        comparison_markdown="| a |",
        shape_criteria_held=1,
        shape_criteria_total=1,
    )
    out = report.write(tmp_path / "r.txt", exhibits_dir=tmp_path / "ex")
    assert "Table 2 body" in out.read_text()
    assert (tmp_path / "ex" / "tab2.txt").exists()
