"""Tests for MSHR files, the store buffer, and the bus model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.bus import Bus
from repro.memory.mshr import MSHRFile, StoreBuffer


def test_mshr_validation():
    with pytest.raises(ValueError):
        MSHRFile("bad", 0)


def test_mshr_no_delay_when_free():
    mshr = MSHRFile("T", 4)
    assert mshr.acquire(now=10, latency=20) == 10
    assert mshr.allocations == 1


def test_mshr_full_delays_to_earliest_release():
    mshr = MSHRFile("T", 2)
    mshr.acquire(0, 10)   # busy until 10
    mshr.acquire(0, 20)   # busy until 20
    start = mshr.acquire(5, 10)
    assert start == 10    # waits for the first release
    assert mshr.full_stalls == 1


def test_mshr_outstanding_drains():
    mshr = MSHRFile("T", 4)
    mshr.acquire(0, 10)
    mshr.acquire(0, 30)
    assert mshr.outstanding(5) == 2
    assert mshr.outstanding(15) == 1
    assert mshr.outstanding(50) == 0


def test_mshr_average_outstanding():
    mshr = MSHRFile("T", 4)
    mshr.acquire(0, 10)  # one miss outstanding cycles 0-10
    avg = mshr.average_outstanding(20)
    assert avg == pytest.approx(0.5)


def test_mshr_integral_monotone():
    mshr = MSHRFile("T", 4)
    mshr.acquire(0, 100)
    a = mshr.integral_at(10)
    b = mshr.integral_at(20)
    assert b > a


def test_store_buffer_immediate_when_space():
    sb = StoreBuffer(2)
    assert sb.push(5) == 5


def test_store_buffer_stalls_when_full():
    sb = StoreBuffer(1, drain_interval=10)
    sb.push(0)           # drains at 10
    start = sb.push(3)
    assert start == 10
    assert sb.full_stalls == 1


def test_store_buffer_validation():
    with pytest.raises(ValueError):
        StoreBuffer(0)


def test_bus_free_adds_latency_only():
    bus = Bus("B", latency=4, occupancy=2)
    assert bus.request(0) == 4
    assert bus.transactions == 1


def test_bus_busy_queues():
    bus = Bus("B", latency=4, occupancy=2)
    bus.request(0)                 # occupies cycles 0-2
    delay = bus.request(0)
    assert delay == 2 + 4          # waits for occupancy, then latency
    assert bus.mean_wait == pytest.approx(1.0)


def test_bus_parameters_validated():
    with pytest.raises(ValueError):
        Bus("bad", latency=-1)
    with pytest.raises(ValueError):
        Bus("bad", latency=1, occupancy=0)


@settings(max_examples=30, deadline=None)
@given(events=st.lists(st.tuples(st.integers(0, 50), st.integers(1, 30)),
                       min_size=1, max_size=60),
       capacity=st.integers(1, 8))
def test_mshr_start_never_before_request(events, capacity):
    mshr = MSHRFile("H", capacity)
    now = 0
    for dt, latency in events:
        now += dt
        start = mshr.acquire(now, latency)
        assert start >= now


@settings(max_examples=30, deadline=None)
@given(gaps=st.lists(st.integers(0, 10), min_size=1, max_size=50))
def test_bus_wait_nonnegative_and_bounded(gaps):
    bus = Bus("H", latency=3, occupancy=2)
    now = 0
    for g in gaps:
        now += g
        delay = bus.request(now)
        assert delay >= 3
