"""Tests for the low-discrepancy stratifier and the fetch-policy ablation."""

import random
from collections import Counter, deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CPUConfig
from repro.core.processor import Processor
from repro.core.stats import SimStats
from repro.isa.code import _Stratifier
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy


def test_stratifier_rejects_empty():
    with pytest.raises(ValueError):
        _Stratifier([("a", 0.0)], random.Random(0))


def test_stratifier_exact_for_uniform_weights():
    s = _Stratifier([("a", 1), ("b", 1)], random.Random(0))
    window = [s.next() for _ in range(10)]
    assert window.count("a") == 5
    assert window.count("b") == 5


def test_stratifier_small_windows_track_weights():
    s = _Stratifier([("x", 0.7), ("y", 0.2), ("z", 0.1)], random.Random(1))
    draws = [s.next() for _ in range(1000)]
    for start in range(0, 1000, 50):
        window = Counter(draws[start:start + 50])
        assert abs(window["x"] / 50 - 0.7) < 0.1
        assert abs(window["y"] / 50 - 0.2) < 0.1


@settings(max_examples=25, deadline=None)
@given(weights=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=6),
       n=st.integers(50, 400))
def test_stratifier_long_run_frequencies(weights, n):
    items = list(range(len(weights)))
    s = _Stratifier(list(zip(items, weights)), random.Random(3))
    counts = Counter(s.next() for _ in range(n))
    total_w = sum(weights)
    for item, w in zip(items, weights):
        expected = w / total_w * n
        assert abs(counts[item] - expected) <= len(weights) + 1


class _Stream:
    def __init__(self, instrs):
        self.queue = deque(instrs)
        self.replay = deque()
        self.current_service = "user"

    def next_instruction(self, now):
        if self.replay:
            return self.replay.popleft()
        return self.queue.popleft() if self.queue else None

    def push_replay(self, instrs):
        self.replay.extend(instrs)


def _alu(pc):
    return Instruction(InstrType.INT_ALU, Mode.USER, "user", pc)


FAST = MemoryConfig(l1_fill_penalty=1, l2_latency=2, mem_latency=4,
                    l1l2_bus_latency=0, mem_bus_latency=0)


def _run_policy(policy):
    streams = [_Stream([_alu(0x1000 * (c + 1) + 4 * i) for i in range(50)])
               for c in range(4)]
    cfg = CPUConfig(n_contexts=4, fetch_contexts=2, fetch_policy=policy)
    stats = SimStats(4)
    proc = Processor(cfg, streams, MemoryHierarchy(FAST), stats, random.Random(0))
    for t in range(200):
        proc.cycle(t)
    return stats


def test_round_robin_policy_completes_work():
    stats = _run_policy("round_robin")
    assert stats.retired == 200


def test_icount_policy_completes_work():
    stats = _run_policy("icount")
    assert stats.retired == 200
