"""Tests for miss classification helpers and MissStats."""

import pytest

from repro.isa.types import Mode
from repro.memory.classify import (
    MissCause,
    MissStats,
    ModeKind,
    classify_conflict,
    mode_kind,
)


def test_mode_kind_collapses_pal_into_kernel():
    assert mode_kind(Mode.USER) is ModeKind.USER
    assert mode_kind(Mode.KERNEL) is ModeKind.KERNEL
    assert mode_kind(Mode.PAL) is ModeKind.KERNEL


def test_classify_conflict_matrix():
    U, K = ModeKind.USER, ModeKind.KERNEL
    assert classify_conflict(1, U, 1, U) is MissCause.INTRATHREAD
    assert classify_conflict(1, U, 2, U) is MissCause.INTERTHREAD
    assert classify_conflict(1, U, 2, K) is MissCause.USER_KERNEL
    assert classify_conflict(1, K, 1, U) is MissCause.USER_KERNEL
    assert classify_conflict(3, K, 4, K) is MissCause.INTERTHREAD


def test_miss_stats_rates():
    s = MissStats()
    s.record_access(0)
    s.record_access(0)
    s.record_access(1)
    s.record_miss(0, MissCause.COMPULSORY)
    assert s.miss_rate(0) == pytest.approx(1 / 2)
    assert s.miss_rate(1) == 0.0
    assert s.miss_rate() == pytest.approx(1 / 3)


def test_miss_stats_empty_rates_are_zero():
    s = MissStats()
    assert s.miss_rate() == 0.0
    assert s.cause_shares() == {}
    assert s.avoided_shares() == {}


def test_cause_shares_sum_to_one():
    s = MissStats()
    for kind, cause in [(0, 0), (0, 1), (1, 2), (1, 2)]:
        s.record_miss(kind, cause)
    shares = s.cause_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares[(1, 2)] == pytest.approx(0.5)


def test_avoided_shares_relative_to_misses():
    s = MissStats()
    s.record_miss(0, 0)
    s.record_miss(0, 0)
    s.record_avoided(0, 1)
    assert s.avoided_shares()[(0, 1)] == pytest.approx(0.5)


def test_merge_accumulates():
    a, b = MissStats(), MissStats()
    a.record_access(0)
    a.record_miss(0, 1)
    b.record_access(0)
    b.record_access(1)
    b.record_miss(0, 1)
    b.record_avoided(1, 1)
    a.merge(b)
    assert a.accesses == [2, 1]
    assert a.causes[(0, 1)] == 2
    assert a.avoided[(1, 1)] == 1
