"""Tests for interval telemetry (repro.obs.timeline).

Covers record determinism (same config+seed => byte-identical
``probe_timeline``), both-tier alignment (class-column conservation in
the detailed and fast tiers; sampled-mode fast/full leg boundaries
reconstructed from the leg records), checkpoint-restore equivalence,
truncation at the sample cap, fingerprint neutrality of telemetry
options, phase detection, the diff/flatten layer, CSV export, and the
``repro timeline`` / ``repro diff --timeline`` CLI surface.
"""

import json

import pytest

from repro import cli
from repro.analysis import experiments
from repro.analysis.artifact import canonical_json
from repro.analysis.export import probe_timeline_to_csv
from repro.analysis.render import sparkline
from repro.core.simulator import Simulation
from repro.obs import timeline as tl
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload

INTERVAL = 2048  # small so short test runs produce many samples


def _sim(workload=SpecIntWorkload, seed=11, **kwargs):
    sim = Simulation(workload(), seed=seed)
    sim.configure_timeline(interval=INTERVAL, **kwargs)
    return sim


def _artifact(sim):
    """Freeze *sim* with trivial (identical) counter windows."""
    from repro.analysis.snapshot import capture, diff

    window = diff(capture(sim), capture(sim))
    return sim.to_artifact(window, window, window)


# -- record basics -----------------------------------------------------------


def test_interval_rounds_up_to_power_of_two():
    sim = Simulation(SpecIntWorkload(), seed=11)
    probe_tl = sim.configure_timeline(interval=3000)
    assert probe_tl.interval == 4096
    assert probe_tl.mask == 4095
    with pytest.raises(ValueError, match="interval"):
        sim.configure_timeline(interval=0)
    with pytest.raises(ValueError, match="max_samples"):
        sim.configure_timeline(max_samples=0)


def test_unsampleable_probe_rejected():
    sim = Simulation(SpecIntWorkload(), seed=11)
    with pytest.raises(ValueError, match="not a scalar"):
        sim.configure_timeline(probes=("no.such.probe",))


def test_record_shape_and_class_conservation_detailed_tier():
    sim = _sim()
    sim.run(max_instructions=40_000)
    rec = sim.probe_timeline.to_record()
    assert rec["interval"] == INTERVAL
    assert rec["samples"] >= 4
    assert rec["dropped"] == 0
    n = sim.machine.cpu.n_contexts
    cols = rec["columns"]
    lengths = {len(c) for c in cols.values()}
    assert lengths == {rec["samples"]}
    # every interval's class deltas account for every context-cycle
    for i in range(rec["samples"]):
        total = sum(cols[f"class.{name}"][i]
                    for name in ("user", "kernel", "pal", "idle"))
        assert total == INTERVAL * n


def test_class_conservation_fast_tier():
    from repro.core.engine import fast_forward

    sim = Simulation(SpecIntWorkload(), seed=11)
    # the fast tier retires ~width instructions per cycle, so shrink the
    # interval to still get several samples from a short run
    sim.configure_timeline(interval=512)
    fast_forward(sim, max_instructions=40_000)
    rec = sim.probe_timeline.to_record()
    interval = rec["interval"]
    assert rec["samples"] >= 4
    n = sim.machine.cpu.n_contexts
    cols = rec["columns"]
    for i in range(rec["samples"]):
        total = sum(cols[f"class.{name}"][i]
                    for name in ("user", "kernel", "pal", "idle"))
        assert total == interval * n
    # the whole run was fast-forwarded: every interval is 100% fast tier
    assert all(v == interval for v in cols["core.mode.fast_cycles"])


def test_same_seed_records_byte_identical():
    records = []
    for _ in range(2):
        sim = _sim(workload=ApacheWorkload, seed=23)
        sim.run(max_instructions=30_000)
        records.append(canonical_json(sim.probe_timeline.to_record()))
    assert records[0] == records[1]


def test_telemetry_config_does_not_perturb_trajectory_or_fingerprint():
    base = Simulation(SpecIntWorkload(), seed=7)
    base.run(max_instructions=20_000)
    off = Simulation(SpecIntWorkload(), seed=7)
    off.configure_timeline(enabled=False)
    off.run(max_instructions=20_000)
    weird = Simulation(SpecIntWorkload(), seed=7)
    weird.configure_timeline(interval=256, probes=("core.retired",))
    weird.run(max_instructions=20_000)
    assert base.params == off.params == weird.params
    assert (base.stats.retired, base.stats.cycles) \
        == (off.stats.retired, off.stats.cycles) \
        == (weird.stats.retired, weird.stats.cycles)
    assert off.probe_timeline is None
    assert off.obs.snapshot()["core.timeline.samples"] == 0


def test_sample_cap_counts_dropped_intervals():
    sim = _sim(max_samples=2)
    sim.run(max_instructions=40_000)
    probe_tl = sim.probe_timeline
    assert probe_tl.samples == 2
    assert probe_tl.dropped >= 1
    art = _artifact(sim)
    assert "timeline_truncated" in art.flags
    assert art.probe_timeline["dropped"] == probe_tl.dropped


def test_alignment_guard_rejects_off_boundary_tick():
    sim = _sim()
    with pytest.raises(RuntimeError, match="alignment"):
        sim.probe_timeline.tick(INTERVAL + 1)


# -- sampled mode ------------------------------------------------------------


def test_sampled_legs_reconstruct_fast_cycles_column():
    from repro.core.engine import build_plan, run_plan

    sim = _sim(workload=ApacheWorkload)
    plan = build_plan("sampled", 60_000, warmup=10_000, sample=(8_000, 8_000))
    records, _ = run_plan(sim, plan)
    rec = sim.probe_timeline.to_record()
    assert rec["samples"] >= 2
    # rebuild each interval's fast-tier cycle count from the leg records
    spans = []
    start = 0
    for leg in records:
        end = start + leg["cycles"]
        if leg["mode"] == "fast":
            spans.append((start, end))
        start = end
    fast_col = rec["columns"]["core.mode.fast_cycles"]
    for i, measured in enumerate(fast_col):
        lo, hi = i * rec["interval"], (i + 1) * rec["interval"]
        overlap = sum(max(0, min(hi, b) - max(lo, a)) for a, b in spans)
        assert measured == overlap, f"sample {i}: {measured} != {overlap}"


def test_checkpoint_restore_reproduces_identical_record(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = experiments.run_spec("specint", "smt", "full", 16_000, 11,
                                mode="sampled", warmup=6_000,
                                sample=(6_000, 2_000))
    straight = experiments.execute_spec(spec, checkpoint=True)
    assert straight.sampling["checkpoint"]["restored"] is False
    experiments.clear_cache()
    restored = experiments.execute_spec(spec, checkpoint=True)
    assert restored.sampling["checkpoint"]["restored"] is True
    assert straight.probe_timeline == restored.probe_timeline


def test_checkpoint_survives_telemetry_config_change():
    # Checkpoint state digests must exclude core.timeline.* (telemetry
    # is an execution option): a checkpoint saved with samples already
    # recorded restores under a different interval -- or with the
    # sampler removed -- without digest drift.
    from repro.core import checkpoint as ckpt
    from repro.core.engine import Leg, run_plan

    prefix = [Leg("fast", 100_000)]  # ~12.5k fast cycles: > one default
    saver = experiments.build_simulation("specint", "smt", "full")
    run_plan(saver, prefix)          # interval, so samples > 0 at save
    assert saver.obs.reader("core.timeline.samples")() > 0
    saved = ckpt.take(saver, prefix)

    retuned = experiments.build_simulation("specint", "smt", "full")
    retuned.configure_timeline(interval=INTERVAL)
    ckpt.restore(retuned, saved)     # would raise CheckpointError pre-v2
    assert retuned.stats.retired == saved["boundary"]

    disabled = experiments.build_simulation("specint", "smt", "full")
    disabled.configure_timeline(enabled=False)
    ckpt.restore(disabled, saved)
    assert disabled.now == saved["cycle"]


# -- derived series and phases ----------------------------------------------


def _synthetic_record(ipc_halves=(4.0, 1.0), samples=24, interval=1024,
                      kernel=0.2):
    half = samples // 2
    retired = [int(ipc_halves[0] * interval)] * half \
        + [int(ipc_halves[1] * interval)] * (samples - half)
    n = 8
    kern = int(kernel * interval * n)
    columns = {
        "core.retired": retired,
        "class.user": [interval * n - kern] * samples,
        "class.kernel": [kern] * samples,
        "class.pal": [0] * samples,
        "class.idle": [0] * samples,
    }
    return {"interval": interval, "samples": samples, "dropped": 0,
            "columns": columns}


def test_derived_series_values():
    rec = _synthetic_record()
    series = tl.derived_series(rec)
    assert series["ipc"][0] == pytest.approx(4.0)
    assert series["ipc"][-1] == pytest.approx(1.0)
    assert series["kernel_share"][0] == pytest.approx(0.2, rel=1e-2)
    # miss.* omitted: no mem columns in the synthetic record
    assert not any(name.startswith("miss.") for name in series)


def test_detect_phases_finds_midpoint_shift():
    rec = _synthetic_record(ipc_halves=(4.0, 1.0), samples=24)
    phases = tl.detect_phases(rec, window=4)
    assert phases, "expected one IPC phase boundary"
    first = phases[0]
    assert first["metric"] == "ipc"
    # the shift straddles sample 12; the windowed test fires as soon as
    # the after-window starts to overlap it
    assert 8 <= first["index"] <= 16
    assert first["cycle"] == first["index"] * rec["interval"]
    marks = tl.phase_marks(rec, window=4)
    assert marks[0] == ["timeline", "phase", first["cycle"]]
    warmup = tl.suggest_warmup(rec, window=4)
    assert warmup == sum(rec["columns"]["core.retired"][:first["index"]])


def test_detect_phases_quiet_on_flat_series():
    rec = _synthetic_record(ipc_halves=(2.0, 2.0))
    assert tl.detect_phases(rec, window=4) == []


def test_real_run_has_timeline_on_artifact():
    sim = _sim()
    sim.run(max_instructions=40_000)
    art = _artifact(sim)
    rec = tl.timeline_record(art)
    assert rec is not None
    series = tl.derived_series(rec)
    assert set(series) >= {"ipc", "kernel_share", "zero_fetch_share",
                           "zero_issue_share", "fast_share", "miss.l1d"}
    assert tl.timeline_record(object()) is None


# -- flatten / diff ----------------------------------------------------------


def test_flatten_uses_cycle_stamps_and_limit():
    rec = _synthetic_record(samples=4, interval=1024)
    flat = tl.flatten_timeline(rec)
    assert flat["ipc@1024"] == pytest.approx(4.0)
    assert flat["ipc@4096"] == pytest.approx(1.0)
    limited = tl.flatten_timeline(rec, limit=2)
    assert set(limited) == {"ipc@1024", "ipc@2048",
                            "kernel_share@1024", "kernel_share@2048"}


def test_diff_timeline_artifacts_shared_prefix():
    sims = []
    for budget, seed in ((30_000, 11), (50_000, 23)):
        sim = _sim(workload=ApacheWorkload, seed=seed)
        sim.run(max_instructions=budget)
        sims.append(_artifact(sim))
    short_rec = tl.timeline_record(sims[0])
    report = tl.diff_timeline_artifacts(sims[0], sims[1])
    assert report.window == "timeline"
    max_cycle = max(int(d.name.rsplit("@", 1)[1]) for d in report.deltas)
    assert max_cycle <= short_rec["samples"] * short_rec["interval"]


def test_diff_timeline_handles_missing_record():
    sim = _sim()
    sim.run(max_instructions=20_000)
    art = _artifact(sim)
    bare = _artifact(sim)
    bare.probe_timeline = None
    report = tl.diff_timeline_artifacts(art, bare)
    assert report.deltas == []


# -- exports and rendering ---------------------------------------------------


def test_probe_timeline_to_csv_round_trip(tmp_path):
    sim = _sim()
    sim.run(max_instructions=30_000)
    art = _artifact(sim)
    path = probe_timeline_to_csv(art, tmp_path / "tl.csv")
    lines = path.read_text().strip().split("\n")
    header = lines[0].split(",")
    assert header[0] == "cycle"
    assert header[1:] == sorted(art.probe_timeline["columns"])
    assert len(lines) == 1 + art.probe_timeline["samples"]
    first = lines[1].split(",")
    assert int(first[0]) == art.probe_timeline["interval"]
    retired_at = header.index("core.retired")
    assert int(first[retired_at]) \
        == art.probe_timeline["columns"]["core.retired"][0]
    art.probe_timeline = None
    with pytest.raises(ValueError, match="no probe timeline"):
        probe_timeline_to_csv(art, tmp_path / "tl2.csv")


def test_sparkline_resamples_and_handles_edges():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(1000)), width=32)) == 32


# -- artifact round trip -----------------------------------------------------


def test_artifact_json_round_trip_preserves_record():
    from repro.analysis.artifact import RunArtifact

    sim = _sim()
    sim.run(max_instructions=30_000)
    art = _artifact(sim)
    again = RunArtifact.loads(art.dumps())
    assert again.probe_timeline == art.probe_timeline
    assert again.class_timeline == art.timeline


# -- live heartbeat merge ----------------------------------------------------


def test_heartbeat_carries_latest_interval_sample():
    from repro.obs.live import Heartbeat, render_sample

    sim = _sim()
    samples = []
    sim.attach_heartbeat(Heartbeat(samples.append, interval=INTERVAL))
    sim.run(max_instructions=40_000)
    merged = [s for s in samples if "sim_ipc" in s]
    assert merged, "no heartbeat sample carried interval telemetry"
    line = render_sample(merged[-1])
    assert "krn" in line
    assert f"IPC {merged[-1]['sim_ipc']:.2f}" in line
    # disabling telemetry detaches it from future beats too
    sim2 = _sim()
    beats2 = []
    sim2.attach_heartbeat(Heartbeat(beats2.append, interval=INTERVAL))
    sim2.configure_timeline(enabled=False)
    sim2.run(max_instructions=20_000)
    assert not any("sim_ipc" in s for s in beats2)


# -- CLI ---------------------------------------------------------------------


@pytest.fixture
def small_budgets(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.2")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


def test_cli_timeline_renders_series(small_budgets, capsys):
    assert cli.main(["timeline", "specint-smt-full"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out and "kernel_share" in out
    assert "sample(s)" in out
    assert any(glyph in out for glyph in "▁▂▃▄▅▆▇█")


def test_cli_timeline_probe_filter_and_exports(small_budgets, tmp_path,
                                               capsys):
    csv_path = tmp_path / "tl.csv"
    json_path = tmp_path / "tl.json"
    assert cli.main(["timeline", "specint-smt-full",
                     "--probe", "ipc", "--csv", str(csv_path),
                     "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out and "miss.l1d" not in out
    assert csv_path.exists()
    payload = json.loads(json_path.read_text())
    assert payload["record"]["samples"] >= 1
    assert "phases" in payload
    # overwrite guard
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        cli.main(["timeline", "specint-smt-full", "--csv", str(csv_path)])
    with pytest.raises(SystemExit, match="unknown timeline series"):
        cli.main(["timeline", "specint-smt-full", "--probe", "nope"])


def test_cli_timeline_warns_on_truncation(tmp_path, capsys):
    sim = _sim(max_samples=2)
    sim.run(max_instructions=40_000)
    path = tmp_path / "trunc.json"
    path.write_text(_artifact(sim).dumps())
    assert cli.main(["timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sample cap hit" in out and "truncated" in out


def test_cli_diff_timeline_ranks_interval_movers(small_budgets, capsys):
    assert cli.main(["diff", "specint-ss-full", "specint-smt-full",
                     "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline window" in out
    assert "@" in out  # series@cycle entries


def test_cli_diff_timeline_flag_conflicts(small_budgets):
    with pytest.raises(SystemExit, match="mutually exclusive"):
        cli.main(["diff", "a-b-c", "d-e-f", "--timeline", "--flame"])
    with pytest.raises(SystemExit, match="per-kilo"):
        cli.main(["diff", "a-b-c", "d-e-f", "--timeline", "--per-kilo"])
