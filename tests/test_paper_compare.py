"""Tests for the paper-vs-measured comparison machinery."""

import pytest

from repro.analysis import experiments
from repro.analysis.paper import PAPER, ComparisonRow, build_comparison, render_markdown


@pytest.fixture(scope="module")
def tiny_records():
    experiments.clear_cache()
    records = {
        "specint-smt-full": experiments.get_run("specint", "smt", "full",
                                                instructions=40_000, seed=71),
        "specint-smt-app": experiments.get_run("specint", "smt", "app",
                                               instructions=40_000, seed=71),
        "specint-ss-full": experiments.get_run("specint", "ss", "full",
                                               instructions=30_000, seed=71),
        "specint-ss-app": experiments.get_run("specint", "ss", "app",
                                              instructions=30_000, seed=71),
        "apache-smt-full": experiments.get_run("apache", "smt", "full",
                                               instructions=60_000, seed=71),
        "apache-ss-full": experiments.get_run("apache", "ss", "full",
                                              instructions=40_000, seed=71),
        "apache-smt-omit": experiments.get_run("apache", "smt", "omit",
                                               instructions=40_000, seed=71),
    }
    yield records
    experiments.clear_cache()


def test_reference_values_present():
    assert PAPER["smt_apache_ipc"] == 4.6
    assert PAPER["ss_apache_ipc"] == 1.1
    assert PAPER["apache_os_share"] == 0.75


def test_comparison_produces_rows(tiny_records):
    rows = build_comparison(tiny_records)
    assert len(rows) >= 15
    exhibits = {r.exhibit for r in rows}
    assert {"Fig 1", "Tab 4", "Fig 6", "Tab 6", "Tab 9"} <= exhibits
    for r in rows:
        assert isinstance(r.holds, bool)
        assert r.shape_criterion


def test_markdown_rendering(tiny_records):
    rows = build_comparison(tiny_records)
    text = render_markdown(rows)
    lines = text.splitlines()
    assert lines[0].startswith("| Exhibit ")
    assert len(lines) == len(rows) + 2  # header + separator


def test_row_markdown_format():
    row = ComparisonRow("Tab X", "thing", 1.5, 1.234567, "criterion", True)
    md = row.as_markdown()
    assert md.startswith("| Tab X |")
    assert "1.23" in md and "yes" in md
