"""Tests for machine configuration and statistics accounting."""

import pytest

from repro.core.config import CPUConfig, MachineConfig
from repro.core.stats import (
    CLASS_IDLE,
    CLASS_KERNEL,
    CLASS_PAL,
    CLASS_USER,
    SimStats,
    service_class,
)
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode


def test_cpu_config_defaults_match_table1():
    cfg = CPUConfig()
    assert cfg.n_contexts == 8
    assert cfg.fetch_width == 8
    assert cfg.fetch_contexts == 2
    assert cfg.pipeline_stages == 9
    assert cfg.int_units == 6
    assert cfg.ls_units == 4
    assert cfg.sync_units == 2
    assert cfg.fp_units == 4
    assert cfg.retire_width == 12


def test_superscalar_variant():
    ss = CPUConfig.superscalar()
    assert ss.n_contexts == 1
    assert ss.pipeline_stages == 7  # two fewer stages
    assert ss.int_units == CPUConfig().int_units  # identical resources


def test_cpu_config_validation():
    with pytest.raises(ValueError):
        CPUConfig(n_contexts=0)
    with pytest.raises(ValueError):
        CPUConfig(fetch_contexts=9)
    with pytest.raises(ValueError):
        CPUConfig(ls_units=7)
    with pytest.raises(ValueError):
        CPUConfig(fetch_policy="magic")


def test_decode_delay_scales_with_depth():
    assert CPUConfig().decode_delay > CPUConfig.superscalar().decode_delay


def test_machine_presets():
    assert MachineConfig.smt().cpu.n_contexts == 8
    assert MachineConfig.superscalar().cpu.n_contexts == 1


def test_service_class_mapping():
    assert service_class("user") == CLASS_USER
    assert service_class("idle") == CLASS_IDLE
    assert service_class("pal:dtlb") == CLASS_PAL
    assert service_class("syscall:read") == CLASS_KERNEL
    assert service_class("netisr") == CLASS_KERNEL


def test_charge_cycle_accumulates_classes():
    stats = SimStats(2)
    stats.charge_cycle(["user", "syscall:read"])
    stats.charge_cycle(["user", "idle"])
    assert stats.cycles == 2
    assert stats.class_cycles[CLASS_USER] == 2
    assert stats.class_cycles[CLASS_KERNEL] == 1
    assert stats.class_cycles[CLASS_IDLE] == 1
    assert stats.class_share(CLASS_USER) == pytest.approx(0.5)


def test_timeline_sampling():
    stats = SimStats(1, timeline_interval=4)
    for _ in range(12):
        stats.charge_cycle(["user"])
    assert len(stats.timeline) == 3
    cycle, shares = stats.timeline[0]
    assert shares[CLASS_USER] == pytest.approx(1.0)


def test_retire_accounting_by_mode_and_type():
    stats = SimStats(1)
    load = Instruction(InstrType.LOAD, Mode.KERNEL, "syscall:read", 0x0,
                       addr=0x10, phys=True)
    stats.retire(load)
    cond = Instruction(InstrType.COND_BRANCH, Mode.USER, "user", 0x4, taken=True)
    stats.retire(cond)
    assert stats.retired == 2
    assert stats.retired_by_mode[Mode.KERNEL] == 1
    assert stats.mem_by_mode[Mode.KERNEL] == 1
    assert stats.phys_mem_by_mode[Mode.KERNEL] == 1
    assert stats.cond_by_mode[Mode.USER] == 1
    assert stats.cond_taken_by_mode[Mode.USER] == 1
    mix = stats.mode_instruction_mix(Mode.KERNEL)
    assert mix[InstrType.LOAD] == pytest.approx(1.0)


def test_ipc_and_squash_fraction():
    stats = SimStats(1)
    stats.charge_cycle(["user"])
    stats.charge_cycle(["user"])
    stats.retired = 5
    stats.fetched = 10
    stats.squashed = 2
    assert stats.ipc == pytest.approx(2.5)
    assert stats.squash_fraction == pytest.approx(0.2)


def test_cycle_share_prefix_matching():
    stats = SimStats(1)
    stats.charge_cycle(["syscall:read"])
    stats.charge_cycle(["syscall:stat"])
    stats.charge_cycle(["user"])
    assert stats.cycle_share("syscall:") == pytest.approx(2 / 3)


def test_empty_stats_are_zero():
    stats = SimStats(4)
    assert stats.ipc == 0.0
    assert stats.squash_fraction == 0.0
    assert stats.avg_fetchable_contexts == 0.0
    assert stats.class_share(CLASS_USER) == 0.0
    assert stats.mode_instruction_mix(Mode.USER) == {}
    assert stats.service_cycle_shares() == {}


def test_per_context_history_option_wires_through():
    import random as _random
    from repro.core.processor import Processor
    from repro.memory.hierarchy import MemoryHierarchy

    class _Empty:
        replay = ()
        current_service = "user"

        def next_instruction(self, now):
            return None

        def push_replay(self, instrs):
            pass

    cfg = CPUConfig(n_contexts=2, fetch_contexts=2, per_context_history=True)
    proc = Processor(cfg, [_Empty(), _Empty()], MemoryHierarchy(),
                     SimStats(2), _random.Random(0))
    assert proc.branch_unit.predictor.per_context_history
    assert len(proc.branch_unit.predictor._ghr) == 2
