"""Tests for the analysis layer: snapshots, windows, metrics, and the
table/figure builders, on one shared small run."""

import pytest

from repro.analysis import figures, metrics as M, tables
from repro.analysis.experiments import build_simulation, run_windowed
from repro.analysis.snapshot import capture, diff
from repro.core.simulator import Simulation
from repro.isa.types import Mode
from repro.workloads.specint import SpecIntWorkload


@pytest.fixture(scope="module")
def small_record():
    sim = build_simulation("specint", "smt", "full", seed=41)
    startup, steady, total = run_windowed(sim, budget=120_000)
    return sim.to_artifact(startup, steady, total,
                           spec_extra={"workload": "specint", "cpu": "smt",
                                       "os_mode": "full",
                                       "instructions": 120_000, "seed": 41})


def test_capture_contains_core_counters():
    sim = Simulation(SpecIntWorkload(), seed=42)
    sim.run(max_instructions=5_000)
    snap = capture(sim)
    for key in ("cycles", "retired", "fetched", "caches", "tlbs", "btb",
                "service_cycles", "syscall_counts", "vm_incursions"):
        assert key in snap
    assert snap["retired"] >= 5_000


def test_diff_subtracts_recursively():
    a = {"x": 10, "nested": {"y": 5, "list": [1, 2]}, "only_after": 3}
    b = {"x": 4, "nested": {"y": 2, "list": [0, 1]}, "gone": 9}
    d = diff(a, b)
    assert d["x"] == 6
    assert d["nested"]["y"] == 3
    assert d["nested"]["list"] == [1, 1]
    assert d["only_after"] == 3
    assert "gone" not in d


def test_windows_partition_the_run(small_record):
    rec = small_record
    assert rec.startup["retired"] + rec.steady["retired"] == rec.total["retired"]
    assert rec.startup["cycles"] + rec.steady["cycles"] == rec.total["cycles"]


def test_window_counters_nonnegative(small_record):
    def walk(node):
        if isinstance(node, dict):
            for v in node.values():
                walk(v)
        elif isinstance(node, list):
            for v in node:
                walk(v)
        else:
            assert node >= 0

    walk(small_record.total)


def test_metrics_basic(small_record):
    w = small_record.total
    assert 0 < M.ipc(w) <= 8
    assert 0 <= M.squash_fraction(w) < 1
    assert 0 < M.avg_fetchable_contexts(w) <= 8
    assert 0 <= M.miss_rate(w, "L1D") <= 1
    assert 0 <= M.miss_rate(w, "BTB") <= 1
    assert 0 <= M.cond_mispredict_rate(w) <= 1


def test_class_shares_sum_to_one(small_record):
    shares = M.class_shares(small_record.total)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_service_shares_sum_to_one(small_record):
    shares = M.service_shares(small_record.total)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_kernel_categories_cover_kernel_time(small_record):
    w = small_record.total
    cats = M.kernel_category_shares(w)
    classes = M.class_shares(w)
    kernel_total = classes["kernel"] + classes["pal"]
    assert sum(cats.values()) == pytest.approx(kernel_total, abs=1e-6)


def test_cause_distribution_sums_to_one(small_record):
    for s in ("L1I", "L1D", "L2", "DTLB", "BTB"):
        dist = M.cause_distribution(small_record.total, s)
        if dist:
            assert sum(dist.values()) == pytest.approx(1.0)


def test_instruction_mix_rows_sum(small_record):
    mix = M.instruction_mix(small_record.total, Mode.USER)
    total = (mix["load"] + mix["store"] + mix["branch"]
             + mix["remaining_integer"] + mix["floating_point"])
    assert total == pytest.approx(100.0, abs=0.5)
    branch_subtypes = (mix["conditional"] + mix["unconditional"]
                       + mix["indirect"] + mix["pal_call_return"])
    assert branch_subtypes == pytest.approx(100.0, abs=0.5)


def test_table4_metrics_keys(small_record):
    m = M.table4_metrics(small_record.total, 8)
    assert set(m) >= {"ipc", "l1i_miss_pct", "dtlb_miss_pct", "zero_fetch_pct"}


def test_table_builders_produce_text(small_record):
    rec = small_record
    for build, args in (
        (tables.table2, (rec,)),
        (tables.table3, (rec,)),
        (tables.table5, (rec,)),
        (tables.table7, (rec,)),
        (tables.table4, (rec, rec, rec, rec)),
        (tables.table6, (rec, rec, rec)),
        (tables.table8, (rec, rec)),
        (tables.table9, (rec, rec, rec, rec)),
    ):
        out = build(*args)
        assert out["text"].strip()
        assert out["data"]


def test_figure_builders_produce_text(small_record):
    rec = small_record
    for build, args in (
        (figures.fig1, (rec,)),
        (figures.fig2, (rec,)),
        (figures.fig3, (rec,)),
        (figures.fig4, (rec,)),
        (figures.fig5, (rec,)),
        (figures.fig6, (rec, rec)),
        (figures.fig7, (rec,)),
    ):
        out = build(*args)
        assert out["text"].strip()
        assert out["data"]


def test_budget_mult_env(monkeypatch):
    from repro.analysis import experiments
    experiments._WARNED_BUDGET_VALUES.clear()
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.5")
    assert experiments._budget_multiplier() == 0.5
    monkeypatch.setenv("REPRO_BUDGET_MULT", "junk")
    with pytest.warns(RuntimeWarning, match="junk"):
        assert experiments._budget_multiplier() == 1.0
    monkeypatch.setenv("REPRO_BUDGET_MULT", "-2")
    with pytest.warns(RuntimeWarning, match="-2"):
        assert experiments._budget_multiplier() == 1.0
    experiments._WARNED_BUDGET_VALUES.clear()


def test_build_simulation_validates():
    with pytest.raises(ValueError):
        build_simulation("specint", "vliw", "full")
    with pytest.raises(ValueError):
        build_simulation("oracle", "smt", "full")
    with pytest.raises(ValueError):
        build_simulation("specint", "smt", "half")


def test_get_run_memoizes(monkeypatch):
    from repro.analysis import experiments
    experiments.clear_cache()
    calls = []
    original = experiments.run_windowed

    def spy(sim, budget):
        calls.append(budget)
        return original(sim, budget)

    monkeypatch.setattr(experiments, "run_windowed", spy)
    a = experiments.get_run("specint", "smt", "full", instructions=8_000, seed=91)
    b = experiments.get_run("specint", "smt", "full", instructions=8_000, seed=91)
    assert a is b
    assert len(calls) == 1
    experiments.clear_cache()
