"""Store-backed checkpoints: content-addressed put/get, kind-aware
listing, verification, and garbage collection alongside run artifacts
(the ``repro cache`` satellite of the tiered engine)."""

import json

import pytest

from repro.analysis.experiments import build_simulation
from repro.analysis.store import RunStore
from repro.core import checkpoint
from repro.core.engine import Leg, run_plan


@pytest.fixture(scope="module")
def ckpt_payload():
    plan = [Leg("fast", 4_000)]
    sim = build_simulation("specint", "smt", "full", seed=31)
    run_plan(sim, plan)
    return checkpoint.take(sim, plan)


def test_put_get_checkpoint_roundtrip(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    path = store.put_checkpoint(ckpt_payload)
    assert path.name.startswith("ckpt-")
    got = store.get_checkpoint(ckpt_payload["fingerprint"])
    assert got == ckpt_payload


def test_get_checkpoint_misses_on_unknown_fingerprint(tmp_path):
    assert RunStore(tmp_path).get_checkpoint("0" * 64) is None


def test_get_checkpoint_treats_stale_schema_as_miss(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    stale = dict(ckpt_payload, checkpoint_schema=checkpoint.CHECKPOINT_SCHEMA + 1)
    path = store.put_checkpoint(stale)
    assert store.get_checkpoint(ckpt_payload["fingerprint"]) is None
    assert path.exists()  # stale, not deleted: that is gc's job


def test_run_get_never_returns_a_checkpoint(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    store.put_checkpoint(ckpt_payload)
    assert store.get(ckpt_payload["fingerprint"]) is None


def test_entries_report_checkpoint_kind(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    store.put_checkpoint(ckpt_payload)
    (entry,) = store.entries()
    assert entry.kind == "checkpoint"
    assert entry.schema_version == checkpoint.CHECKPOINT_SCHEMA
    assert entry.label.startswith("ckpt:")
    assert entry.fingerprint == ckpt_payload["fingerprint"]


def test_verify_accepts_valid_checkpoint(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    store.put_checkpoint(ckpt_payload)
    (record,) = store.verify()
    assert record["status"] == "ok"


def test_verify_flags_tampered_checkpoint(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    path = store.put_checkpoint(ckpt_payload)
    payload = json.loads(path.read_text())
    payload["stride"] = payload["stride"] + 1  # changes what it reproduces
    path.write_text(json.dumps(payload))
    (record,) = store.verify()
    assert record["status"] in ("MISMATCH", "CHECKSUM")


def test_verify_skips_stale_checkpoint_schema(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    stale = dict(ckpt_payload, checkpoint_schema=checkpoint.CHECKPOINT_SCHEMA + 1)
    store.put_checkpoint(stale)
    (record,) = store.verify()
    assert record["status"] == "SKIP"


def test_gc_removes_stale_checkpoints_only(tmp_path, ckpt_payload):
    store = RunStore(tmp_path)
    store.put_checkpoint(ckpt_payload)
    stale = dict(ckpt_payload, checkpoint_schema=checkpoint.CHECKPOINT_SCHEMA + 1,
                 boundary=ckpt_payload["boundary"] + 1)
    stale_path = store.put_checkpoint(stale)
    removed = store.gc()
    assert [e.path for e in removed] == [stale_path]
    assert store.get_checkpoint(ckpt_payload["fingerprint"]) == ckpt_payload
