"""Tests for ``repro lint``: rule families, baseline ratchet, CLI."""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintEngine

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_ROOT = REPO / "src" / "repro"
FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def run_engine(root):
    engine = LintEngine(pathlib.Path(root))
    return engine, engine.run()


def rule_ids(findings):
    return {f.rule for f in findings}


def idents(findings, rule):
    return {f.ident for f in findings if f.rule == rule}


# -- fixture trees: one seeded violation per rule ---------------------------


def test_determinism_fixture_trips_every_d_rule():
    _, findings = run_engine(FIXTURES / "determinism")
    assert rule_ids(findings) == {"D101", "D102", "D103", "D104", "D105"}
    # one finding per rule: the suppressed call and the shielded
    # (sorted/len/sum-wrapped) uses must not be flagged
    assert len(findings) == 5


def test_probe_fixture_trips_every_p_rule():
    _, findings = run_engine(FIXTURES / "probes")
    assert rule_ids(findings) == {"P101", "P102", "P103", "P104"}
    assert idents(findings, "P101") == {"mem.cache.hit"}
    assert idents(findings, "P102") == {"mem.cache.orphan"}
    assert idents(findings, "P103") == {"bogus.cache.hits"}
    # drift both ways: extra registrations and a removed manifest name
    assert idents(findings, "P104") == {
        "+mem.cache.orphan", "+bogus.cache.hits", "-mem.cache.gone"}


def test_schema_fixture_flags_unreachable_config_field():
    _, findings = run_engine(FIXTURES / "schema")
    assert rule_ids(findings) == {"S101"}
    assert idents(findings, "S101") == {"FixtureConfig.depth"}


def test_rule_selection(tmp_path):
    engine = LintEngine(FIXTURES / "determinism")
    engine.select(["D103"])
    assert {f.rule for f in engine.run()} == {"D103"}


# -- the repository itself must be clean ------------------------------------


def test_repo_tree_is_clean():
    _, findings = run_engine(SCAN_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_json_output_and_exit_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json", "-"],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout[proc.stdout.index("{"):])
    assert payload["findings"] == []


def test_cli_exit_nonzero_on_fixture_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint",
         str(FIXTURES / "determinism")],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 1
    assert "D101" in proc.stdout


# -- acceptance scenarios: typo'd probe, omitted config field ---------------


def copy_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(SCAN_ROOT, dest)
    return dest


def test_probe_name_typo_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    kernel = dest / "os_model" / "kernel.py"
    text = kernel.read_text()
    assert "os.syscall_latency_cycles" in text
    kernel.write_text(
        text.replace("os.syscall_latency_cycles", "os.syscal_latency_cycles"))
    _, findings = run_engine(dest)
    assert "P104" in rule_ids(findings)
    assert "+os.syscal_latency_cycles" in idents(findings, "P104")
    assert "-os.syscall_latency_cycles" in idents(findings, "P104")
    # the reader of the old name now reads an unknown probe
    assert "os.syscall_latency_cycles" in idents(findings, "P101")


def test_new_config_field_outside_fingerprint_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    config = dest / "core" / "config.py"
    text = config.read_text()
    assert "n_contexts: int = 8" in text
    config.write_text(text.replace(
        "n_contexts: int = 8",
        "n_contexts: int = 8\n    rob_entries: int = 64"))
    _, findings = run_engine(dest)
    assert "S102" in rule_ids(findings)


def test_snapshot_shape_change_without_version_bump_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    registry = dest / "obs" / "registry.py"
    text = registry.read_text()
    assert "def snapshot" in text
    # grow the registry snapshot payload without touching SCHEMA_VERSION
    marker = "def snapshot(self)"
    idx = text.index(marker)
    body_start = text.index("\n", text.index(":", idx)) + 1
    indent = "        "
    text = (text[:body_start]
            + f"{indent}_shape_probe = 1  # structural edit\n"
            + text[body_start:])
    registry.write_text(text)
    _, findings = run_engine(dest)
    assert "S103" in rule_ids(findings)


def test_dead_simulator_knob_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    sim = dest / "core" / "simulator.py"
    text = sim.read_text()
    assert '"spin_policy"' in text
    # declare a knob that Simulation.__init__ does not accept
    text = text.replace('"spin_policy"', '"spin_policyy"', 1)
    sim.write_text(text)
    _, findings = run_engine(dest)
    assert "S101" in rule_ids(findings)
    assert any(i.startswith("dead-knob.") or i.startswith("knob.")
               for i in idents(findings, "S101"))


# -- baseline ratchet -------------------------------------------------------


def test_baseline_roundtrip(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    bad = tree / "mod.py"
    bad.write_text("import random\n\n\ndef f():\n    return random.random()\n")
    _, findings = run_engine(tree)
    assert rule_ids(findings) == {"D101"}

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)

    # baselined: the same finding splits as old, nothing new
    new, old = baseline.split(findings)
    assert new == [] and len(old) == 1

    # a second occurrence of the same key is new (multiset semantics)
    new, old = baseline.split(findings + findings)
    assert len(new) == 1 and len(old) == 1

    # fixing the finding leaves the baseline stale but nothing fails
    bad.write_text("def f():\n    return 4\n")
    _, findings = run_engine(tree)
    assert findings == []
    new, old = baseline.split(findings)
    assert new == [] and old == []
    assert sum(baseline.counts.values()) == 1  # stale entry remains


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "nope.json")
    assert baseline.counts == {}


def test_inline_suppression(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "mod.py").write_text(
        "import random\n\n\ndef f():\n"
        "    return random.random()  # lint: ignore[D101]\n")
    _, findings = run_engine(tree)
    assert findings == []


def test_parse_error_is_reported(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "broken.py").write_text("def f(:\n")
    _, findings = run_engine(tree)
    assert rule_ids(findings) == {"E000"}


# -- generic style gate (ruff) ----------------------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed in this environment")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
