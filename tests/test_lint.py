"""Tests for ``repro lint``: rule families, baseline ratchet, CLI."""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import LintEngine

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_ROOT = REPO / "src" / "repro"
FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def run_engine(root):
    engine = LintEngine(pathlib.Path(root))
    return engine, engine.run()


def rule_ids(findings):
    return {f.rule for f in findings}


def idents(findings, rule):
    return {f.ident for f in findings if f.rule == rule}


# -- fixture trees: one seeded violation per rule ---------------------------


def test_determinism_fixture_trips_every_d_rule():
    _, findings = run_engine(FIXTURES / "determinism")
    assert rule_ids(findings) == {"D101", "D102", "D103", "D104", "D105"}
    # one finding per rule: the suppressed call and the shielded
    # (sorted/len/sum-wrapped) uses must not be flagged
    assert len(findings) == 5


def test_probe_fixture_trips_every_p_rule():
    _, findings = run_engine(FIXTURES / "probes")
    assert rule_ids(findings) == {"P101", "P102", "P103", "P104"}
    assert idents(findings, "P101") == {"mem.cache.hit"}
    assert idents(findings, "P102") == {"mem.cache.orphan"}
    assert idents(findings, "P103") == {"bogus.cache.hits"}
    # drift both ways: extra registrations and a removed manifest name
    assert idents(findings, "P104") == {
        "+mem.cache.orphan", "+bogus.cache.hits", "-mem.cache.gone"}


def test_schema_fixture_flags_unreachable_config_field():
    _, findings = run_engine(FIXTURES / "schema")
    assert rule_ids(findings) == {"S101"}
    assert idents(findings, "S101") == {"FixtureConfig.depth"}


def test_hotpath_fixture_trips_every_h_rule():
    _, findings = run_engine(FIXTURES / "hotpath")
    assert rule_ids(findings) == {"H101", "H102", "H103", "H104", "H105",
                                  "H106"}
    # churn constructs inside both tier loops are hot; the loop roots'
    # prologues and the cold function must stay clean
    assert idents(findings, "H101") == {"Worker.step:x1", "_helper:x1"}
    assert idents(findings, "H102") == {"Worker.step:x1"}
    assert idents(findings, "H106") == {"Worker.step:x2"}  # loop-depth x2
    assert len(findings) == 7


def test_events_fixture_trips_every_e_rule():
    _, findings = run_engine(FIXTURES / "events")
    assert rule_ids(findings) == {"E101", "E102", "E103"}
    # lexical try/finally pairing and the completion-closure discipline
    # both pass; only the three seeded shapes fire
    assert idents(findings, "E101") == {
        "missing:os:fault:missing", "escape:os:tick:escape",
        "orphan:os:orphan:orphan"}
    assert idents(findings, "E102") == {"vmx"}
    assert idents(findings, "E103") == {"bogus.retired"}


def test_faults_fixture_trips_every_f_rule():
    _, findings = run_engine(FIXTURES / "faults")
    assert rule_ids(findings) == {"F101", "F102", "F103"}
    # unknown site and the dead converse; lambda across the boundary;
    # the coordinator-side HOME read must not flag
    assert idents(findings, "F101") == {"mem.read.flop",
                                        "dead:sched.pick.stall"}
    assert idents(findings, "F102") == {"submit"}
    assert idents(findings, "F103") == {"USER"}


def test_rule_selection(tmp_path):
    engine = LintEngine(FIXTURES / "determinism")
    engine.select(["D103"])
    assert {f.rule for f in engine.run()} == {"D103"}


# -- the repository itself must be clean or baselined ------------------------


def test_repo_tree_is_clean_or_baselined():
    _, findings = run_engine(SCAN_ROOT)
    baseline = load_baseline(REPO / "lint-baseline.json")
    new, _old = baseline.split(findings)
    assert new == [], "\n".join(f.render() for f in new)
    # the ratchet only grandfathers hot-path debt: every other family
    # must be outright clean
    assert {f.rule[0] for f in findings} <= {"H"}, \
        "\n".join(f.render() for f in findings if not f.rule.startswith("H"))


def test_hot_set_spans_both_tier_loops():
    from repro.lint.callgraph import CallGraph
    from repro.lint.rules_hotpath import FUNC_ROOTS, LOOP_ROOTS

    engine, _ = run_engine(SCAN_ROOT)
    graph = CallGraph.for_engine(engine)
    hot = graph.hot_set(LOOP_ROOTS, FUNC_ROOTS)
    names = {(key[1], key[2]) for key in hot}
    # both tier-driver loop roots resolve...
    assert ("Simulation", "_run_once") in names
    assert ("", "_fast_once") in names
    # ...and the per-cycle machinery is reached transitively from them
    for expected in (("Processor", "cycle"), ("Processor", "_fetch"),
                     ("MiniDUX", "dispatch"), ("Scheduler", "pick_next"),
                     ("ContextStream", "next_fast"),
                     ("SimStats", "charge_cycle"),
                     ("ProbeTimeline", "tick")):
        assert expected in names, f"{expected} missing from the hot set"


def test_cli_json_output_and_exit_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json", "-"],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout[proc.stdout.index("{"):])
    assert payload["new"] == 0
    assert all(not f["new"] for f in payload["findings"])


def test_cli_exit_nonzero_on_fixture_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint",
         str(FIXTURES / "determinism")],
        capture_output=True, text=True, cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 1
    assert "D101" in proc.stdout


def lint_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, cwd=cwd,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})


def test_cli_rule_comma_list_and_family_prefix(tmp_path):
    # exact ids, comma-separated: only those rules run
    lint_cli(str(FIXTURES / "determinism"),
             "--rule", "D101,D102", "--json", str(tmp_path / "f.json"),
             "--baseline", str(tmp_path / "none.json"))
    payload = json.loads((tmp_path / "f.json").read_text())
    assert {f["rule"] for f in payload["findings"]} == {"D101", "D102"}
    # family prefixes: an E/F-only run over the determinism fixture is
    # clean, so selection really excluded the D family
    proc = lint_cli(str(FIXTURES / "determinism"), "--rule", "E,F",
                    "--baseline", str(tmp_path / "none.json"))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_list_rules_grouped_by_family():
    proc = lint_cli("--list-rules")
    assert proc.returncode == 0
    out = proc.stdout
    for header in ("D: determinism", "E: span/event/timeline discipline",
                   "F: process-boundary / fault discipline",
                   "H: hot-path performance", "P: probe hygiene",
                   "S: schema / fingerprint drift"):
        assert header in out, f"missing family header {header!r}"
    for rule_id in ("D101", "E101", "E102", "E103", "F101", "F102", "F103",
                    "H101", "H106", "P101", "S101"):
        assert rule_id in out
    # internal collector pseudo-rules stay hidden
    assert "P100" not in out and "S100" not in out


def test_cli_sarif_output(tmp_path):
    sarif_path = tmp_path / "lint.sarif"
    proc = lint_cli(str(FIXTURES / "faults"), "--sarif", str(sarif_path),
                    "--baseline", str(tmp_path / "none.json"))
    assert proc.returncode == 1
    doc = json.loads(sarif_path.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_index = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"F101", "F102", "F103"} <= rule_index
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"F101", "F102", "F103"}
    # everything is new relative to the empty baseline -> warning level
    assert {r["level"] for r in results} == {"warning"}
    for r in results:
        loc = r["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith(".py")
        assert loc["region"]["startLine"] >= 1
        assert r["partialFingerprints"]["reproLintKey"]


def test_cli_dump_callgraph(tmp_path):
    dump_path = tmp_path / "callgraph.json"
    proc = lint_cli(str(FIXTURES / "hotpath"), "--rule", "H",
                    "--dump-callgraph", str(dump_path),
                    "--baseline", str(tmp_path / "none.json"))
    assert proc.returncode == 1  # the fixture's H findings still fail
    graph = json.loads(dump_path.read_text())
    assert "Simulation" in graph["classes"]
    funcs = graph["functions"]
    # receiver-type binding resolved the per-cycle edge
    assert "sim.py::Worker.step" in funcs["sim.py::Simulation._run_once"][
        "calls"]
    assert "sim.py::_helper" in funcs["sim.py::_fast_once"]["calls"]


# -- acceptance scenarios: typo'd probe, omitted config field ---------------


def copy_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(SCAN_ROOT, dest)
    return dest


def test_probe_name_typo_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    kernel = dest / "os_model" / "kernel.py"
    text = kernel.read_text()
    assert "os.syscall_latency_cycles" in text
    kernel.write_text(
        text.replace("os.syscall_latency_cycles", "os.syscal_latency_cycles"))
    _, findings = run_engine(dest)
    assert "P104" in rule_ids(findings)
    assert "+os.syscal_latency_cycles" in idents(findings, "P104")
    assert "-os.syscall_latency_cycles" in idents(findings, "P104")
    # the reader of the old name now reads an unknown probe
    assert "os.syscall_latency_cycles" in idents(findings, "P101")


def test_new_config_field_outside_fingerprint_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    config = dest / "core" / "config.py"
    text = config.read_text()
    assert "n_contexts: int = 8" in text
    config.write_text(text.replace(
        "n_contexts: int = 8",
        "n_contexts: int = 8\n    rob_entries: int = 64"))
    _, findings = run_engine(dest)
    assert "S102" in rule_ids(findings)


def test_snapshot_shape_change_without_version_bump_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    registry = dest / "obs" / "registry.py"
    text = registry.read_text()
    assert "def snapshot" in text
    # grow the registry snapshot payload without touching SCHEMA_VERSION
    marker = "def snapshot(self)"
    idx = text.index(marker)
    body_start = text.index("\n", text.index(":", idx)) + 1
    indent = "        "
    text = (text[:body_start]
            + f"{indent}_shape_probe = 1  # structural edit\n"
            + text[body_start:])
    registry.write_text(text)
    _, findings = run_engine(dest)
    assert "S103" in rule_ids(findings)


def test_dead_simulator_knob_is_caught(tmp_path):
    dest = copy_tree(tmp_path)
    sim = dest / "core" / "simulator.py"
    text = sim.read_text()
    assert '"spin_policy"' in text
    # declare a knob that Simulation.__init__ does not accept
    text = text.replace('"spin_policy"', '"spin_policyy"', 1)
    sim.write_text(text)
    _, findings = run_engine(dest)
    assert "S101" in rule_ids(findings)
    assert any(i.startswith("dead-knob.") or i.startswith("knob.")
               for i in idents(findings, "S101"))


# -- baseline ratchet -------------------------------------------------------


def test_baseline_roundtrip(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    bad = tree / "mod.py"
    bad.write_text("import random\n\n\ndef f():\n    return random.random()\n")
    _, findings = run_engine(tree)
    assert rule_ids(findings) == {"D101"}

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)

    # baselined: the same finding splits as old, nothing new
    new, old = baseline.split(findings)
    assert new == [] and len(old) == 1

    # a second occurrence of the same key is new (multiset semantics)
    new, old = baseline.split(findings + findings)
    assert len(new) == 1 and len(old) == 1

    # fixing the finding leaves the baseline stale but nothing fails
    bad.write_text("def f():\n    return 4\n")
    _, findings = run_engine(tree)
    assert findings == []
    new, old = baseline.split(findings)
    assert new == [] and old == []
    assert sum(baseline.counts.values()) == 1  # stale entry remains


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "nope.json")
    assert baseline.counts == {}


def test_inline_suppression(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "mod.py").write_text(
        "import random\n\n\ndef f():\n"
        "    return random.random()  # lint: ignore[D101]\n")
    _, findings = run_engine(tree)
    assert findings == []


def test_parse_error_is_reported(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "broken.py").write_text("def f(:\n")
    _, findings = run_engine(tree)
    assert rule_ids(findings) == {"E000"}


# -- generic style gate (ruff) ----------------------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed in this environment")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed in this environment")
def test_mypy_strict_on_typed_subtrees():
    # Mirrors the CI job: strict typing is scoped (via [tool.mypy] in
    # pyproject.toml) to the analysis substrate and the fault plumbing.
    proc = subprocess.run(
        ["mypy", "src/repro/lint", "src/repro/faults"],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
