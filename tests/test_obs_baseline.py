"""Tests for perf baselines and the regression gate (repro.obs.baseline)."""

import json

import pytest

from repro import cli
from repro.analysis import experiments
from repro.obs import baseline


@pytest.fixture(autouse=True)
def _tiny_isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.005")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


BUDGET = 2_000  # instructions; enough for stable nonzero rates


# -- measurement ------------------------------------------------------------

def test_measure_sim_scenario_payload_shape():
    payload = baseline.measure("specint", instructions=BUDGET)
    assert payload["schema"] == baseline.BASELINE_SCHEMA
    assert payload["scenario"] == "specint"
    assert payload["instructions"] == BUDGET
    assert payload["host"]["wall_s"] > 0
    assert payload["host"]["ips"] > 0
    assert payload["sim"]["retired"] >= BUDGET
    assert payload["sim"]["ipc"] > 0
    assert payload["sim"]["probes"]["core.fetched"] > 0
    assert "python" in payload["meta"]
    json.dumps(payload)  # BENCH files must be plain JSON


def test_measure_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        baseline.measure("quake")


def test_write_and_load_baseline_round_trip(tmp_path):
    payload = baseline.measure("specint", instructions=BUDGET)
    path = baseline.write_baseline(payload, tmp_path / "sub")
    assert path.name == "BENCH_specint.json"
    assert baseline.load_baseline("specint", tmp_path / "sub") == payload
    assert baseline.load_baseline("apache", tmp_path / "sub") is None


# -- the gate ---------------------------------------------------------------

def _payload(ips=10_000.0, rss=50_000, wall=1.0, instructions=BUDGET,
             cycles=900, ipc=2.2):
    return {"schema": 1, "scenario": "specint", "instructions": instructions,
            "host": {"wall_s": wall, "ips": ips, "max_rss_kb": rss},
            "sim": {"cycles": cycles, "retired": instructions, "ipc": ipc}}


def test_check_passes_inside_the_band():
    regressions, notes = baseline.check(_payload(ips=9_000), _payload(),
                                        tolerance=0.25)
    assert regressions == [] and notes == []


def test_check_flags_throughput_regression():
    regressions, _ = baseline.check(_payload(ips=5_000), _payload(),
                                    tolerance=0.25)
    assert len(regressions) == 1 and "ips" in regressions[0]


def test_check_flags_rss_regression_and_notes_improvement():
    regressions, notes = baseline.check(
        _payload(ips=20_000, rss=90_000), _payload(), tolerance=0.25)
    assert len(regressions) == 1 and "max_rss_kb" in regressions[0]
    assert any("improved" in n and "ips" in n for n in notes)


def test_check_notes_simulated_drift_without_gating():
    regressions, notes = baseline.check(_payload(cycles=1300, ipc=1.5),
                                        _payload(), tolerance=0.25)
    assert regressions == []
    assert any("not gated" in n for n in notes)


def test_check_different_budgets_skips_wall_and_drift():
    regressions, notes = baseline.check(
        _payload(instructions=4 * BUDGET, wall=9.0, cycles=4000),
        _payload(), tolerance=0.25)
    assert regressions == []
    assert any("budgets differ" in n for n in notes)


def test_check_gates_wall_clock_for_rateless_scenarios():
    base = {"scenario": "report", "host": {"wall_s": 1.0}, "sim": {}}
    slow = {"scenario": "report", "host": {"wall_s": 2.0}, "sim": {}}
    regressions, _ = baseline.check(slow, base, tolerance=0.25)
    assert len(regressions) == 1 and "wall_s" in regressions[0]
    regressions, _ = baseline.check(base, dict(base), tolerance=0.25)
    assert regressions == []


# -- CLI --------------------------------------------------------------------

def test_cli_bench_writes_trajectory_files(tmp_path, capsys):
    assert cli.main(["bench", "specint", "--instructions", str(BUDGET),
                     "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "BENCH_specint.json" in out
    payload = json.loads((tmp_path / "BENCH_specint.json").read_text())
    assert payload["scenario"] == "specint"


def test_cli_bench_check_seeds_passes_and_fails(tmp_path, capsys):
    """Acceptance: --check exits nonzero when a scenario regresses beyond
    the noise band (fabricated baseline), zero otherwise."""
    # Tiny budgets make host timings very noisy; a wide band keeps this
    # about the gate's mechanics, not the machine's mood.
    args = ["bench", "specint", "--instructions", str(BUDGET),
            "--dir", str(tmp_path), "--check", "--tolerance", "5.0"]
    # No baseline yet: --check seeds one and passes.
    assert cli.main(args) == 0
    assert "seeded" in capsys.readouterr().out

    # A fresh re-check against the just-seeded baseline passes.
    assert cli.main(args) == 0
    assert ": ok" in capsys.readouterr().out

    # Fabricate an impossibly fast baseline: the gate must trip even
    # through the wide band (-99.99..% throughput beats any sane band).
    path = baseline.baseline_path("specint", tmp_path)
    payload = json.loads(path.read_text())
    payload["host"]["ips"] = payload["host"]["ips"] * 1e6
    payload["host"]["max_rss_kb"] = 1  # and memory "exploded" too
    path.write_text(json.dumps(payload))
    assert cli.main(args[:-2] + ["--tolerance", "0.5"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "ips" in out and "max_rss_kb" in out


def test_cli_bench_update_rewrites_on_pass(tmp_path, capsys):
    assert cli.main(["bench", "specint", "--instructions", str(BUDGET),
                     "--dir", str(tmp_path)]) == 0
    before = baseline.load_baseline("specint", tmp_path)
    assert cli.main(["bench", "specint", "--instructions", str(BUDGET),
                     "--dir", str(tmp_path), "--check", "--update",
                     "--tolerance", "5.0"]) == 0
    after = baseline.load_baseline("specint", tmp_path)
    assert after["meta"]["generated"] >= before["meta"]["generated"]
    capsys.readouterr()


def test_cli_bench_rejects_unknown_scenario(tmp_path):
    with pytest.raises(SystemExit, match="unknown scenario"):
        cli.main(["bench", "quake3", "--dir", str(tmp_path)])
