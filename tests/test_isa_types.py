"""Tests for the instruction/mode taxonomies."""

from repro.isa.types import (
    BRANCH_TYPES,
    MEMORY_TYPES,
    InstrType,
    Mode,
    is_branch,
    is_memory,
)


def test_branch_types_cover_all_control_transfers():
    assert InstrType.COND_BRANCH in BRANCH_TYPES
    assert InstrType.UNCOND_BRANCH in BRANCH_TYPES
    assert InstrType.INDIRECT_JUMP in BRANCH_TYPES
    assert InstrType.CALL in BRANCH_TYPES
    assert InstrType.RETURN in BRANCH_TYPES
    assert InstrType.PAL_CALL in BRANCH_TYPES
    assert InstrType.PAL_RETURN in BRANCH_TYPES


def test_branch_and_memory_sets_disjoint():
    assert not BRANCH_TYPES & MEMORY_TYPES


def test_memory_types_include_sync():
    # Load-locked/store-conditional pairs reference memory.
    assert InstrType.SYNC in MEMORY_TYPES
    assert InstrType.LOAD in MEMORY_TYPES
    assert InstrType.STORE in MEMORY_TYPES


def test_alu_ops_are_neither_branch_nor_memory():
    for itype in (InstrType.INT_ALU, InstrType.FP_ALU):
        assert not is_branch(itype)
        assert not is_memory(itype)


def test_is_branch_matches_set_membership():
    for itype in InstrType:
        assert is_branch(itype) == (itype in BRANCH_TYPES)


def test_is_memory_matches_set_membership():
    for itype in InstrType:
        assert is_memory(itype) == (itype in MEMORY_TYPES)


def test_modes_are_three():
    assert {Mode.USER, Mode.KERNEL, Mode.PAL} == set(Mode)


def test_mode_ints_are_stable_indices():
    # Stats arrays index by mode value; the encoding must stay 0/1/2.
    assert int(Mode.USER) == 0
    assert int(Mode.KERNEL) == 1
    assert int(Mode.PAL) == 2
