"""Artifact and store layer tests: JSON round-trips, content-addressed
cache hits/misses, fingerprint coverage, and the warm-cache guarantee
(a warmed store serves runs with zero simulation)."""

import json
import warnings

import pytest

import repro.analysis.artifact as artifact_mod
from repro.analysis import experiments, figures, tables
from repro.analysis.artifact import ArtifactError, RunArtifact, run_fingerprint
from repro.analysis.experiments import build_simulation, run_windowed
from repro.analysis.store import RunStore
from repro.core.simulator import Simulation, sim_params
from repro.os_model.kernel import OSMode


@pytest.fixture(scope="module")
def small_artifact():
    sim = build_simulation("specint", "smt", "full", seed=47)
    startup, steady, total = run_windowed(sim, budget=40_000)
    return sim.to_artifact(startup, steady, total,
                           spec_extra={"workload": "specint", "cpu": "smt",
                                       "os_mode": "full",
                                       "instructions": 40_000, "seed": 47})


# -- artifact round-trip ---------------------------------------------------


def test_artifact_is_plain_json_data(small_artifact):
    # Every field serializes without custom encoders.
    text = json.dumps(small_artifact.to_json_dict())
    assert json.loads(text)["fingerprint"] == small_artifact.fingerprint


def test_json_roundtrip_equality(small_artifact):
    clone = RunArtifact.loads(small_artifact.dumps())
    assert clone == small_artifact
    assert clone is not small_artifact
    assert clone.fingerprint == small_artifact.fingerprint
    assert clone.label == small_artifact.label
    assert clone.steady_boundary == small_artifact.steady_boundary


def test_from_json_rejects_wrong_schema(small_artifact):
    payload = small_artifact.to_json_dict()
    payload["schema_version"] += 1
    with pytest.raises(ArtifactError):
        RunArtifact.from_json_dict(payload)


def test_from_json_rejects_missing_field(small_artifact):
    payload = small_artifact.to_json_dict()
    del payload["steady"]
    with pytest.raises(ArtifactError):
        RunArtifact.from_json_dict(payload)


def test_loads_rejects_garbage():
    with pytest.raises(ArtifactError):
        RunArtifact.loads("not json at all {")


def test_window_accessor(small_artifact):
    assert small_artifact.window("steady") is small_artifact.steady
    with pytest.raises(ValueError):
        small_artifact.window("warmup")


# -- probe snapshots inside artifacts (observability layer) ---------------


def test_artifact_windows_carry_probe_tree(small_artifact):
    for window in ("startup", "steady", "total"):
        probes = small_artifact.window(window).get("probes")
        assert isinstance(probes, dict) and probes, window
    probes = small_artifact.total["probes"]
    layers = {name.split(".", 1)[0] for name in probes}
    assert {"mem", "branch", "os", "core"} <= layers
    assert len(probes) >= 30
    assert probes["core.retired"] == small_artifact.total["retired"]


def test_probe_snapshot_byte_identical_store_vs_fresh(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    stored = store.get(small_artifact.fingerprint)
    for window in ("startup", "steady", "total"):
        fresh = json.dumps(small_artifact.window(window)["probes"],
                           sort_keys=True)
        disk = json.dumps(stored.window(window)["probes"], sort_keys=True)
        assert fresh == disk


# -- fingerprint coverage (satellite 2: memo key covers every knob) -------


def test_fingerprint_changes_with_seed():
    a = experiments.run_spec("specint", "smt", "full", instructions=10_000, seed=1)
    b = experiments.run_spec("specint", "smt", "full", instructions=10_000, seed=2)
    assert run_fingerprint(a) != run_fingerprint(b)


def test_fingerprint_changes_with_any_sim_knob():
    base = experiments.run_spec("specint", "smt", "full", instructions=10_000)
    base_fp = run_fingerprint(base)
    for knob, value in (("quantum", 10_000), ("timer_interval", 50_000),
                        ("tick_interval", 4), ("omit_kernel_refs", True),
                        ("timeline_interval", 4096),
                        ("tlb_flush_on_switch", True),
                        ("spin_policy", "block")):
        spec = json.loads(json.dumps(base))
        assert knob in spec["params"], knob
        spec["params"][knob] = value
        assert run_fingerprint(spec) != base_fp, knob


def test_fingerprint_changes_with_machine_geometry():
    base = experiments.run_spec("specint", "smt", "full", instructions=10_000)
    other = experiments.run_spec("specint", "ss", "full", instructions=10_000)
    assert run_fingerprint(base) != run_fingerprint(other)


def test_simulation_params_match_run_spec():
    """Drift guard: the spec used for the store key must equal the params
    the live Simulation actually runs with."""
    spec = experiments.run_spec("apache", "smt", "omit",
                                instructions=5_000, seed=3)
    sim = build_simulation("apache", "smt", "omit", seed=3)
    assert sim.params == spec["params"]


def test_sim_params_rejects_unknown_knob():
    machine = experiments.canonical_machine("smt")
    with pytest.raises(TypeError):
        sim_params("specint", machine, os_mode=OSMode.FULL, seed=1,
                   warp_factor=9)


# -- store hits and misses -------------------------------------------------


def test_store_hit_on_identical_key(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    assert store.get(small_artifact.fingerprint) is None
    store.put(small_artifact)
    loaded = store.get(small_artifact.fingerprint)
    assert loaded == small_artifact
    assert small_artifact.fingerprint in store


def test_store_put_is_idempotent(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    p1 = store.put(small_artifact)
    p2 = store.put(small_artifact)
    assert p1 == p2
    assert len(store.entries()) == 1


def test_store_miss_on_changed_seed(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    other = experiments.run_spec("specint", "smt", "full",
                                 instructions=40_000, seed=48)
    assert store.get(run_fingerprint(other)) is None


def test_store_miss_on_changed_config(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    spec = json.loads(json.dumps(small_artifact.spec))
    spec["params"]["quantum"] = 12_345
    assert store.get(run_fingerprint(spec)) is None


def test_store_miss_on_schema_bump(tmp_path, small_artifact, monkeypatch):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    old_fp = small_artifact.fingerprint
    monkeypatch.setattr(artifact_mod, "SCHEMA_VERSION",
                        artifact_mod.SCHEMA_VERSION + 1)
    # The new schema produces a different key for the same spec...
    assert run_fingerprint(small_artifact.spec) != old_fp
    # ...and the stale on-disk entry no longer parses as current-schema.
    assert store.get(old_fp) is None


def test_store_treats_corrupt_file_as_miss(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    path = store.put(small_artifact)
    path.write_text("{ corrupted")
    assert store.get(small_artifact.fingerprint) is None
    assert store.entries() == []


def test_store_entries_report_schema_and_created(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    entry = store.entries()[0]
    assert entry.schema_version == artifact_mod.SCHEMA_VERSION
    assert "T" in entry.created  # ISO-8601 timestamp
    # A stale-schema file is still listed (diagnosable via cache ls)
    # even though get() treats it as a miss.
    payload = small_artifact.to_json_dict()
    payload["schema_version"] = 1
    payload["fingerprint"] = "f" * 64
    (tmp_path / "old-run-ffffffffffffffffffff.json").write_text(
        json.dumps(payload))
    versions = sorted(e.schema_version for e in store.entries())
    assert versions == [1, artifact_mod.SCHEMA_VERSION]
    assert store.get("f" * 64) is None


def test_store_entries_and_clear(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    entries = store.entries()
    assert len(entries) == 1
    assert entries[0].label == "specint-smt-full"
    assert entries[0].fingerprint == small_artifact.fingerprint
    assert entries[0].size > 0
    assert store.clear() == 1
    assert store.entries() == []
    assert store.clear() == 0


# -- warm-cache guarantee (acceptance: no simulation after warm) ----------


def test_warm_store_serves_runs_without_simulation(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    experiments.clear_cache()
    kwargs = dict(instructions=9_000, seed=97)
    warmed = experiments.get_run("specint", "smt", "full", **kwargs)

    # Drop the in-process memo so only the on-disk store can answer.
    experiments.clear_cache()

    def boom(self, *args, **kw):  # pragma: no cover - must never run
        raise AssertionError("Simulation.run called despite a warm store")

    monkeypatch.setattr(Simulation, "run", boom)
    served = experiments.get_run("specint", "smt", "full", **kwargs)
    assert served == warmed
    # Second lookup is a memo hit: identical object.
    assert experiments.get_run("specint", "smt", "full", **kwargs) is served
    experiments.clear_cache()


# -- stored artifacts render identically (acceptance: byte-identical) -----


def test_exhibits_byte_identical_live_vs_stored(tmp_path, small_artifact):
    store = RunStore(tmp_path)
    store.put(small_artifact)
    stored = store.get(small_artifact.fingerprint)
    live, disk = small_artifact, stored
    for build, make_args in (
        (tables.table2, lambda r: (r,)),
        (tables.table3, lambda r: (r,)),
        (tables.table5, lambda r: (r,)),
        (tables.table7, lambda r: (r,)),
        (tables.table4, lambda r: (r, r, r, r)),
        (tables.table6, lambda r: (r, r, r)),
        (tables.table8, lambda r: (r, r)),
        (tables.table9, lambda r: (r, r, r, r)),
        (figures.fig1, lambda r: (r,)),
        (figures.fig2, lambda r: (r,)),
        (figures.fig3, lambda r: (r,)),
        (figures.fig4, lambda r: (r,)),
        (figures.fig5, lambda r: (r,)),
        (figures.fig6, lambda r: (r, r)),
        (figures.fig7, lambda r: (r,)),
    ):
        assert build(*make_args(live))["text"] == build(*make_args(disk))["text"]


# -- satellite 1: REPRO_BUDGET_MULT misuse warns exactly once -------------


def test_budget_mult_warns_once_per_value(monkeypatch):
    experiments._WARNED_BUDGET_VALUES.clear()
    monkeypatch.setenv("REPRO_BUDGET_MULT", "three")
    with pytest.warns(RuntimeWarning, match="three"):
        assert experiments._budget_multiplier() == 1.0
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a repeat warning would raise
        assert experiments._budget_multiplier() == 1.0
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0")
    with pytest.warns(RuntimeWarning, match="'0'"):
        assert experiments._budget_multiplier() == 1.0
    experiments._WARNED_BUDGET_VALUES.clear()
