"""Fault-injection plan tests: firing arithmetic, serialization, the
module-level arming API, and deterministic byte corruption."""

import random

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSite, InjectedFault, corrupt_bytes


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts and ends with no plan armed anywhere."""
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    faults.clear()
    faults.set_attempt(1)
    yield
    faults.clear()
    faults.set_attempt(1)


# -- FaultSite / FaultPlan mechanics ---------------------------------------


def test_unknown_site_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSite("store.get.typo")


def test_fire_respects_times_budget():
    plan = FaultPlan(sites=(FaultSite("worker.crash", times=2),))
    hits = [plan.fire("worker.crash") is not None for _ in range(5)]
    assert hits == [True, True, False, False, False]


def test_fire_times_zero_is_unlimited():
    plan = FaultPlan(sites=(FaultSite("worker.crash", times=0),))
    assert all(plan.fire("worker.crash") is not None for _ in range(10))


def test_fire_skip_lets_first_invocations_pass():
    plan = FaultPlan(sites=(FaultSite("sim.exception", skip=2, times=1),))
    hits = [plan.fire("sim.exception") is not None for _ in range(4)]
    assert hits == [False, False, True, False]


def test_fire_match_restricts_by_context():
    plan = FaultPlan(sites=(FaultSite("worker.crash", match="-ss-",
                                      times=0),))
    assert plan.fire("worker.crash", "specint-smt-full") is None
    assert plan.fire("worker.crash", "specint-ss-full") is not None


def test_fire_attempt_gates_on_supervised_attempt():
    plan = FaultPlan(sites=(FaultSite("worker.crash", attempt=1),))
    assert plan.fire("worker.crash", attempt=2) is None
    assert plan.fire("worker.crash", attempt=1) is not None


def test_other_sites_do_not_fire():
    plan = FaultPlan(sites=(FaultSite("worker.crash"),))
    assert plan.fire("sim.hang") is None


def test_reset_forgets_firing_history():
    plan = FaultPlan(sites=(FaultSite("worker.crash", times=1),))
    assert plan.fire("worker.crash") is not None
    assert plan.fire("worker.crash") is None
    plan.reset()
    assert plan.fire("worker.crash") is not None


def test_plan_json_roundtrip():
    plan = FaultPlan(sites=(FaultSite("sim.exception", times=3, skip=1,
                                      match="apache", attempt=2, arg=500),),
                     seed=99)
    clone = FaultPlan.loads(plan.dumps())
    assert clone.sites == plan.sites
    assert clone.seed == plan.seed


# -- module-level arming ---------------------------------------------------


def test_fire_without_plan_is_none():
    assert faults.fire("worker.crash") is None


def test_install_and_clear_cycle():
    faults.install(FaultPlan(sites=(FaultSite("worker.crash"),)))
    assert faults.fire("worker.crash") is not None
    faults.clear()
    assert faults.fire("worker.crash") is None


def test_install_arms_environment_for_children(monkeypatch):
    plan = FaultPlan(sites=(FaultSite("sim.hang"),), seed=5)
    faults.install(plan)
    import os

    assert FaultPlan.loads(os.environ[faults.FAULT_PLAN_ENV]) == plan
    faults.clear()
    assert faults.FAULT_PLAN_ENV not in os.environ


def test_active_parses_environment_lazily(monkeypatch):
    plan = FaultPlan(sites=(FaultSite("store.put.torn"),), seed=3)
    monkeypatch.setenv(faults.FAULT_PLAN_ENV, plan.dumps())
    monkeypatch.setattr(faults, "_PLAN", faults._UNSET)
    assert faults.active() == plan


def test_active_treats_bad_environment_as_disarmed(monkeypatch):
    monkeypatch.setenv(faults.FAULT_PLAN_ENV, "{not json")
    monkeypatch.setattr(faults, "_PLAN", faults._UNSET)
    assert faults.active() is None


def test_set_attempt_feeds_fire():
    faults.install(FaultPlan(sites=(FaultSite("worker.crash", attempt=2),)),
                   env=False)
    assert faults.fire("worker.crash") is None
    faults.set_attempt(2)
    assert faults.fire("worker.crash") is not None


def test_injected_fault_carries_site_and_taxonomy():
    exc = InjectedFault("sim.hang", "boom", snapshot={"x": 1})
    assert exc.site == "sim.hang"
    assert exc.transient is True
    assert exc.snapshot == {"x": 1}


# -- corrupt_bytes ---------------------------------------------------------


def test_corrupt_bytes_differs_and_is_deterministic():
    data = b'{"fingerprint": "abc", "total": {"retired": 123456}}' * 4
    out1 = corrupt_bytes(data, random.Random("s:site"))
    out2 = corrupt_bytes(data, random.Random("s:site"))
    assert out1 != data
    assert out1 == out2
    assert len(out1) == len(data)


def test_corrupt_bytes_handles_tiny_inputs():
    assert corrupt_bytes(b"", random.Random(0)) != b""
    assert corrupt_bytes(b"x", random.Random(0)) != b"x"
