"""Tests for data-address generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.data import PAGE_SIZE, WORD, DataModel, Region


def region(name="r", base=0x1000_0000, n_pages=8, hot_pages=4, **kw):
    return Region(name, base, n_pages, hot_pages, **kw)


def test_region_validation():
    with pytest.raises(ValueError):
        region(base=0x1001)  # not page aligned
    with pytest.raises(ValueError):
        region(n_pages=0)
    with pytest.raises(ValueError):
        region(hot_pages=9)  # > n_pages
    with pytest.raises(ValueError):
        region(weight=-1)


def test_region_geometry():
    r = region(n_pages=4)
    assert r.size == 4 * PAGE_SIZE
    assert r.limit == r.base + r.size
    assert r.contains(r.base)
    assert r.contains(r.limit - 1)
    assert not r.contains(r.limit)


def test_hot_addresses_deterministic_and_shared():
    a = region(name="shared", hot_lines=16)
    b = region(name="shared", hot_lines=16)
    assert a.hot_addresses == b.hot_addresses


def test_hot_addresses_distinct_for_distinct_regions():
    a = region(name="one", hot_lines=16)
    b = region(name="two", hot_lines=16)
    assert a.hot_addresses != b.hot_addresses


def test_hot_addresses_within_hot_pages():
    r = region(hot_pages=3, hot_lines=24)
    limit = r.base + 3 * PAGE_SIZE
    assert all(r.base <= a < limit for a in r.hot_addresses)


def test_default_hot_line_count():
    r = region(hot_pages=5)
    assert len(r.hot_addresses) == 20  # 4 * hot_pages


def test_addresses_stay_in_regions():
    rng = random.Random(3)
    regions = [region(name="a"), region(name="b", base=0x2000_0000, weight=0.5)]
    dm = DataModel(regions, rng)
    for _ in range(5000):
        addr, phys = dm.next(rng.random() < 0.3, False)
        assert any(r.contains(addr) for r in regions)
        assert not phys
        assert addr % WORD == 0


def test_phys_sites_draw_from_phys_regions():
    rng = random.Random(4)
    phys_region = region(name="p", base=0x8_0000_0000_0000, phys=True)
    dm = DataModel([region(name="v"), phys_region], rng)
    for _ in range(500):
        addr, phys = dm.next(False, True)
        assert phys
        assert phys_region.contains(addr)


def test_phys_fallback_when_no_virtual_regions():
    rng = random.Random(5)
    phys_region = region(name="only-p", phys=True)
    dm = DataModel([phys_region], rng)
    addr, phys = dm.next(False, False)  # site asks virtual, none exists
    assert phys
    assert phys_region.contains(addr)


def test_copy_burst_walks_sequentially():
    rng = random.Random(6)
    dm = DataModel([region()], rng)
    dm.set_copy(0x5000_0000, 0x6000_0000, 64)
    loads = [dm.next(False, False) for _ in range(8)]
    stores = [dm.next(True, False) for _ in range(8)]
    assert [a for a, _ in loads] == [0x5000_0000 + 8 * i for i in range(8)]
    assert [a for a, _ in stores] == [0x6000_0000 + 8 * i for i in range(8)]
    assert not dm.burst_active


def test_copy_burst_phys_flags():
    rng = random.Random(7)
    dm = DataModel([region()], rng)
    dm.set_copy(0x5000_0000, 0x6000_0000, 16, src_phys=True, dst_phys=False)
    _, src_phys = dm.next(False, False)
    _, dst_phys = dm.next(True, False)
    assert src_phys and not dst_phys


def test_scan_burst_one_sided():
    rng = random.Random(8)
    dm = DataModel([region()], rng)
    dm.set_scan(0x7000_0000, 24)
    addrs = [dm.next(False, False)[0] for _ in range(3)]
    assert addrs == [0x7000_0000, 0x7000_0008, 0x7000_0010]
    # Stores were never part of the scan: they fall back to regions.
    addr, _ = dm.next(True, False)
    assert not (0x7000_0000 <= addr < 0x7000_0018)


def test_burst_replaces_previous_burst():
    rng = random.Random(9)
    dm = DataModel([region()], rng)
    dm.set_copy(0x5000_0000, 0x6000_0000, 1024)
    dm.set_copy(0x9000_0000, 0xA000_0000, 16)
    addr, _ = dm.next(False, False)
    assert addr == 0x9000_0000


def test_invalid_bursts_rejected():
    rng = random.Random(10)
    dm = DataModel([region()], rng)
    with pytest.raises(ValueError):
        dm.set_copy(0, 0, 0)
    with pytest.raises(ValueError):
        dm.set_scan(0, -8)


def test_empty_region_list_rejected():
    with pytest.raises(ValueError):
        DataModel([], random.Random(0))


@settings(max_examples=25, deadline=None)
@given(n_pages=st.integers(1, 32), hot_pages=st.integers(1, 8),
       seed=st.integers(0, 100))
def test_region_addresses_always_in_bounds(n_pages, hot_pages, seed):
    hot_pages = min(hot_pages, n_pages)
    r = region(name=f"h{seed}", n_pages=n_pages, hot_pages=hot_pages)
    dm = DataModel([r], random.Random(seed))
    for _ in range(200):
        addr, _ = dm.next(False, False)
        assert r.contains(addr)


@settings(max_examples=25, deadline=None)
@given(nbytes=st.integers(8, 4096))
def test_copy_burst_conserves_bytes(nbytes):
    nbytes -= nbytes % 8
    if nbytes == 0:
        nbytes = 8
    dm = DataModel([region()], random.Random(0))
    dm.set_copy(0x5000_0000, 0x6000_0000, nbytes)
    n_loads = 0
    while True:
        addr, _ = dm.next(False, False)
        if not (0x5000_0000 <= addr < 0x5000_0000 + nbytes):
            break
        n_loads += 1
    assert n_loads == nbytes // 8
