"""Tests for the event bus, trace exporters, and the self-profiler."""

import json

import pytest

from repro.core.simulator import Simulation
from repro.obs.events import BEGIN, END, EventBus, SimEvent
from repro.obs.export import (
    PID_CONTEXTS,
    PID_SERVICES,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.obs.profile import ScopeProfiler, profile_simulation
from repro.workloads.specint import SpecIntWorkload


# -- event bus --------------------------------------------------------------

def test_bus_records_and_counts():
    bus = EventBus(capacity=10)
    bus.emit(5, "cache", "l1d_miss", tid=1)
    bus.emit(9, "syscall", "read", phase=BEGIN, service="syscall:read")
    assert len(bus) == 2
    assert bus.counts() == {"cache": 1, "syscall": 1}
    assert [e.name for e in bus.by_kind("cache")] == ["l1d_miss"]
    assert [e.ts for e in bus.window(6, 10)] == [9]


def test_bus_ring_drops_oldest():
    bus = EventBus(capacity=3)
    for i in range(5):
        bus.emit(i, "pipeline", "squash")
    assert len(bus) == 3
    assert bus.dropped == 2
    assert bus.recorded == 5
    assert bus.events[0].ts == 2


def test_bus_kind_filter():
    bus = EventBus(kinds=("syscall",))
    bus.emit(0, "cache", "l1d_miss")
    bus.emit(1, "syscall", "read")
    assert [e.kind for e in bus.events] == ["syscall"]


def test_bus_capacity_validation():
    with pytest.raises(ValueError):
        EventBus(capacity=0)


# -- exporters --------------------------------------------------------------

def _sample_events():
    return [
        SimEvent(10, "pipeline", "syscall:read", BEGIN, ctx=0),
        SimEvent(12, "cache", "l2_miss", ctx=1, tid=3),
        SimEvent(30, "pipeline", "syscall:read", END, ctx=0),
        SimEvent(40, "syscall", "read", BEGIN, service="syscall:read"),
        SimEvent(55, "syscall", "read", END, service="syscall:read"),
        SimEvent(60, "interrupt", "timer", ctx=2),
    ]


def test_jsonl_is_one_object_per_line():
    lines = to_jsonl(_sample_events()).splitlines()
    assert len(lines) == 6
    first = json.loads(lines[0])
    assert first == {"ts": 10, "kind": "pipeline", "name": "syscall:read",
                     "phase": "B", "ctx": 0}


def test_chrome_trace_is_valid_json_with_monotonic_timestamps():
    payload = to_chrome_trace(_sample_events(), n_contexts=4)
    text = json.dumps(payload)
    reloaded = json.loads(text)
    stamps = [e["ts"] for e in reloaded["traceEvents"] if "ts" in e]
    assert stamps == sorted(stamps)
    assert reloaded["displayTimeUnit"] == "ms"


def test_chrome_trace_one_track_per_context_and_service():
    payload = to_chrome_trace(_sample_events(), n_contexts=4)
    events = payload["traceEvents"]
    thread_meta = [e for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
    ctx_tracks = {(e["pid"], e["tid"]): e["args"]["name"]
                  for e in thread_meta if e["pid"] == PID_CONTEXTS}
    assert ctx_tracks == {(PID_CONTEXTS, i): f"ctx{i}" for i in range(4)}
    svc_tracks = {e["args"]["name"] for e in thread_meta
                  if e["pid"] == PID_SERVICES}
    assert "syscall:read" in svc_tracks
    # every non-metadata event sits on a declared track
    declared = {(e["pid"], e["tid"]) for e in thread_meta}
    used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    assert used <= declared


def test_chrome_trace_pairs_spans_into_complete_events():
    payload = to_chrome_trace(_sample_events(), n_contexts=4)
    spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    by_name = {(e["pid"], e["name"]): e for e in spans}
    ctx_span = by_name[(PID_CONTEXTS, "syscall:read")]
    assert (ctx_span["ts"], ctx_span["dur"]) == (10, 20)
    svc_span = by_name[(PID_SERVICES, "read")]
    assert (svc_span["ts"], svc_span["dur"]) == (40, 15)


def test_chrome_trace_closes_unmatched_begins():
    events = [SimEvent(5, "syscall", "read", BEGIN, service="syscall:read"),
              SimEvent(50, "cache", "l1d_miss", ctx=0)]
    payload = to_chrome_trace(events)
    spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["ts"] == 5 and spans[0]["dur"] == 45


def test_chrome_trace_drops_end_without_begin():
    payload = to_chrome_trace([SimEvent(5, "syscall", "read", END,
                                        service="syscall:read")])
    assert [e for e in payload["traceEvents"] if e["ph"] == "X"] == []


def test_write_chrome_trace_to_disk(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, _sample_events(), n_contexts=4)
    reloaded = json.loads(path.read_text())
    assert {"traceEvents", "displayTimeUnit", "otherData"} <= set(reloaded)


# -- simulation wiring ------------------------------------------------------

def test_simulation_emits_events_across_layers():
    sim = Simulation(SpecIntWorkload(), seed=55)
    bus = EventBus()
    sim.attach_events(bus)
    sim.run(max_instructions=20_000)
    kinds = set(bus.counts())
    assert {"pipeline", "cache", "tlb", "sched"} <= kinds
    payload = to_chrome_trace(bus.events,
                              n_contexts=sim.machine.cpu.n_contexts)
    stamps = [e["ts"] for e in payload["traceEvents"] if "ts" in e]
    assert stamps == sorted(stamps)
    assert len(stamps) > 0


def test_unattached_simulation_has_no_bus():
    sim = Simulation(SpecIntWorkload(), seed=55)
    assert sim.events is None
    assert sim.processor.events is None
    assert sim.hierarchy.events is None
    assert sim.os.events is None


# -- self-profiler ----------------------------------------------------------

def test_profiler_nesting_charges_self_time():
    prof = ScopeProfiler()
    with prof("outer"):
        with prof("inner"):
            pass
    rows = {r["scope"]: r for r in prof.report()}
    assert rows["outer"]["calls"] == 1
    assert rows["inner"]["calls"] == 1
    assert rows["outer"]["self_s"] <= rows["outer"]["total_s"]
    assert "outer" in prof.render()


def test_profile_simulation_restores_instance_methods():
    sim = Simulation(SpecIntWorkload(), seed=55)
    prof = profile_simulation(sim, max_instructions=5_000)
    scopes = {r["scope"] for r in prof.report()}
    assert {"sim.run", "core.cycle", "core.fetch",
            "mem.data_access"} <= scopes
    # shadowing was per-instance and is fully undone
    assert "data_access" not in vars(sim.hierarchy)
    assert "_fetch" not in vars(sim.processor)
    assert sim.stats.retired >= 5_000
