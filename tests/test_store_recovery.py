"""Crash-safety tests for the run store: checksum quarantine on read,
integrity audit statuses, and reclamation of interrupted atomic writes."""

import json

import pytest

from repro import faults
from repro.analysis import experiments
from repro.analysis.store import RunStore, content_hash


@pytest.fixture(scope="module")
def small_artifact():
    spec = experiments.run_spec("specint", "smt", "app",
                                instructions=8_000, seed=53)
    return experiments.execute_spec(spec)


@pytest.fixture()
def warm_store(tmp_path, small_artifact):
    store = RunStore(tmp_path / "store")
    store.put(small_artifact)
    return store


@pytest.fixture(autouse=True)
def _disarmed():
    faults.clear()
    yield
    faults.clear()


def _the_file(store):
    (path,) = sorted(store.root.glob("*.json"))
    return path


# -- checksum on get -------------------------------------------------------


def test_put_embeds_content_hash(warm_store):
    payload = json.loads(_the_file(warm_store).read_text())
    assert payload["content_hash"] == content_hash(payload)


def test_get_serves_intact_entry(warm_store, small_artifact):
    assert warm_store.get(small_artifact.fingerprint) == small_artifact


def test_tampered_value_is_quarantined_not_served(warm_store, small_artifact):
    path = _the_file(warm_store)
    payload = json.loads(path.read_text())
    payload["total"]["retired"] += 1  # bit rot; content_hash now stale
    path.write_text(json.dumps(payload, sort_keys=True))

    assert warm_store.get(small_artifact.fingerprint) is None
    assert not path.exists()
    (entry,) = warm_store.quarantine_entries()
    assert entry.reason == "content checksum mismatch"
    assert entry.path.parent == warm_store.root / "quarantine"
    assert (entry.path.parent / f"{entry.path.name}.why").exists()


def test_unparsable_entry_is_quarantined(warm_store, small_artifact):
    _the_file(warm_store).write_text("{definitely not json")
    assert warm_store.get(small_artifact.fingerprint) is None
    (entry,) = warm_store.quarantine_entries()
    assert entry.reason == "unparsable JSON"


def test_quarantine_never_crashes_a_sweep(warm_store, small_artifact):
    """get() on a corrupt entry is a miss, and a re-put heals the store."""
    _the_file(warm_store).write_text("junk")
    assert warm_store.get(small_artifact.fingerprint) is None
    warm_store.put(small_artifact)
    assert warm_store.get(small_artifact.fingerprint) == small_artifact
    assert len(warm_store.quarantine_entries()) == 1


def test_stale_schema_is_a_miss_not_a_quarantine(warm_store, small_artifact,
                                                 monkeypatch):
    import repro.analysis.store as store_mod

    monkeypatch.setattr(store_mod, "SCHEMA_VERSION", 10_000)
    assert warm_store.get(small_artifact.fingerprint) is None
    assert _the_file(warm_store).exists()
    assert warm_store.quarantine_entries() == []


def test_injected_corruption_on_get(warm_store, small_artifact):
    """The store.get.corrupt fault site garbles the on-disk bytes and the
    read path quarantines them instead of serving rot."""
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("store.get.corrupt", times=1),), seed=7),
        env=False)
    assert warm_store.get(small_artifact.fingerprint) is None
    (entry,) = warm_store.quarantine_entries()
    assert entry.reason in ("unparsable JSON", "content checksum mismatch")
    # The site's times budget is spent: the healed store serves normally.
    warm_store.put(small_artifact)
    assert warm_store.get(small_artifact.fingerprint) == small_artifact


# -- verify ----------------------------------------------------------------


def test_verify_clean_store(warm_store):
    (record,) = warm_store.verify()
    assert record["status"] == "ok"
    assert record["label"] == "specint-smt-app"


def test_verify_flags_checksum_rot(warm_store):
    path = _the_file(warm_store)
    payload = json.loads(path.read_text())
    payload["total"]["retired"] += 1
    path.write_text(json.dumps(payload, sort_keys=True))
    (record,) = warm_store.verify()
    assert record["status"] == "CHECKSUM"


def test_verify_flags_unreadable(warm_store):
    _the_file(warm_store).write_text("nope")
    (record,) = warm_store.verify()
    assert record["status"] == "UNREADABLE"


# -- interrupted-write reclamation -----------------------------------------


def test_collect_tmp_dry_run_keeps_files(warm_store):
    stranded = warm_store.root / "dead-run.json.tmp.12345"
    stranded.write_text("half an artifact")
    found = warm_store.collect_tmp(dry_run=True)
    assert [(p.name, s) for p, s in found] == \
        [("dead-run.json.tmp.12345", len("half an artifact"))]
    assert stranded.exists()


def test_collect_tmp_reclaims(warm_store, small_artifact):
    (warm_store.root / "dead-run.json.tmp.12345").write_text("x" * 64)
    (warm_store.root / "other.json.tmp.99").write_text("y")
    found = warm_store.collect_tmp()
    assert len(found) == 2
    assert warm_store.collect_tmp(dry_run=True) == []
    # Real entries are untouched.
    assert warm_store.get(small_artifact.fingerprint) == small_artifact


def test_torn_put_leaves_reclaimable_tmp(tmp_path, small_artifact):
    store = RunStore(tmp_path / "torn")
    faults.install(faults.FaultPlan(
        sites=(faults.FaultSite("store.put.torn", times=1),)), env=False)
    with pytest.raises(faults.InjectedFault):
        store.put(small_artifact)
    assert store.get(small_artifact.fingerprint) is None  # nothing torn
    (found,) = store.collect_tmp()
    assert ".tmp." in found[0].name
    # The retry (fault budget spent) completes and the store is whole.
    store.put(small_artifact)
    assert store.get(small_artifact.fingerprint) == small_artifact


def test_collect_tmp_orders_pids_numerically(warm_store):
    # Lexicographic ordering would put .tmp.100 before .tmp.99 and make
    # `cache gc` transcripts depend on which pids the host handed out.
    for name in ("b.json.tmp.100", "b.json.tmp.99", "a.json.tmp.7"):
        (warm_store.root / name).write_text("x")
    found = warm_store.collect_tmp(dry_run=True)
    assert [p.name for p, _ in found] \
        == ["a.json.tmp.7", "b.json.tmp.99", "b.json.tmp.100"]
