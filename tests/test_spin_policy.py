"""Tests for the yield-on-contention lock policy (SMT-aware OS option)."""

import random

import pytest

from repro.core.simulator import Simulation
from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
from repro.isa.mix import InstructionMix
from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX
from repro.os_model.thread import ThreadState
from repro.workloads.specint import SpecIntWorkload


def test_invalid_spin_policy_rejected():
    with pytest.raises(ValueError):
        Simulation(SpecIntWorkload(), seed=1, spin_policy="pray")
    with pytest.raises(ValueError):
        MiniDUX(MemoryHierarchy(), 1, random.Random(0), spin_policy="never")


def _contended_rig(spin_policy):
    osk = MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(9),
                  spin_policy=spin_policy)

    def gen():
        yield ("syscall", "stat", {})
        while True:
            yield ("compute", 10)

    threads = []
    for pid in range(2):
        asp = AddressSpace(pid=pid, name=f"p{pid}")
        asp.region("heap", 0x40_0000, 8, 4)
        code = CodeModel(CodeModelConfig(
            f"p{pid}", asp.base + 0x1_0000, InstructionMix(),
            segments=(SegmentSpec("main", 40, 8),), seed=pid))
        threads.append(osk.create_process(f"p{pid}", pid, code, asp,
                                          lambda t: gen()))
    # A third party holds the vfs lock, so both stats contend immediately.
    assert osk.locks.acquire("vfs", 999)
    return osk, threads


def test_spin_policy_emits_spin_instructions():
    osk, _ = _contended_rig("spin")
    for i in range(4000):
        for stream in osk.streams:
            osk.tick(i)
            stream.next_instruction(i)
        if osk.counters["spin_instructions"]:
            break
    assert osk.counters["spin_instructions"] > 0


def test_yield_policy_sleeps_instead_of_spinning():
    osk, threads = _contended_rig("yield")
    for i in range(6000):
        for stream in osk.streams:
            stream.next_instruction(i)
    # Both processes are asleep on the lock queue rather than spinning
    # (the remaining spin instructions, if any, are dispatch-level runq
    # spins from the CPU pseudo-threads, which must not sleep).
    sleepers = osk.wait_queues.get("lock:vfs", ())
    assert len(sleepers) == 2
    assert all(t.state is ThreadState.BLOCKED for t in threads)


def test_yield_policy_hands_over_on_release():
    osk, threads = _contended_rig("yield")
    for i in range(6000):
        for stream in osk.streams:
            stream.next_instruction(i)
    assert osk.wait_queues.get("lock:vfs")
    # The third-party holder releases; the stream loop must wake a waiter
    # and let it complete its stat call.
    osk.locks.release("vfs", 999)
    osk.wakeup_one("lock:vfs")
    for i in range(6000, 40_000):
        for stream in osk.streams:
            stream.next_instruction(i)
        if all(t.runnable for t in threads) and not osk.wait_queues.get("lock:vfs"):
            break
    assert osk.syscall_counts.get("stat", 0) == 2
