"""Tests for the run-diff engine (repro.obs.diff) and its CLI surface."""

import json

import pytest

from repro import cli
from repro.analysis import experiments
from repro.obs.diff import (
    DiffReport,
    ProbeDelta,
    diff_artifacts,
    diff_flat,
    diff_runs,
    flatten_window,
    mean_and_band,
    seed_specs,
)


@pytest.fixture(autouse=True)
def _tiny_isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


# -- flattening -------------------------------------------------------------

def test_flatten_window_scalars_histograms_and_derived():
    window = {
        "cycles": 200,
        "retired": 500,
        "probes": {
            "os.sched.switches": 7,
            "os.syscall_latency_cycles": {
                "count": 4, "sum": 40, "bounds": [10, 100],
                "buckets": [2, 2, 0]},
        },
    }
    flat = flatten_window(window)
    assert flat["os.sched.switches"] == 7
    assert flat["os.syscall_latency_cycles.count"] == 4
    assert flat["os.syscall_latency_cycles.sum"] == 40
    assert flat["os.syscall_latency_cycles.mean"] == pytest.approx(10.0)
    assert flat["os.syscall_latency_cycles.p50"] == pytest.approx(10.0)
    assert flat["derived.cycles"] == 200
    assert flat["derived.retired"] == 500
    assert flat["derived.ipc"] == pytest.approx(2.5)


def test_flatten_window_empty_histogram_skips_derived_scalars():
    window = {"cycles": 0, "retired": 0, "probes": {
        "os.syscall_latency_cycles": {"count": 0, "sum": 0,
                                      "bounds": [10], "buckets": [0, 0]}}}
    flat = flatten_window(window)
    assert flat["os.syscall_latency_cycles.count"] == 0
    assert "os.syscall_latency_cycles.mean" not in flat
    assert "derived.ipc" not in flat  # zero cycles


# -- diff_flat --------------------------------------------------------------

def test_diff_flat_deltas_appearance_and_zero_drop():
    deltas = diff_flat({"x": 10, "gone": 3, "both_zero": 0},
                       {"x": 15, "appeared": 4, "both_zero": 0})
    by_name = {d.name: d for d in deltas}
    assert set(by_name) == {"x", "gone", "appeared"}
    assert by_name["x"].delta == 5
    assert by_name["x"].rel == pytest.approx(0.5)
    assert by_name["appeared"].rel is None  # appeared from 0
    assert by_name["gone"].delta == -3
    assert by_name["gone"].rel == pytest.approx(-1.0)


def test_diff_flat_grep_is_a_prefix_filter():
    deltas = diff_flat({"os.a": 1, "mem.b": 2}, {"os.a": 2, "mem.b": 4},
                       grep="os.")
    assert [d.name for d in deltas] == ["os.a"]


def test_diff_flat_band_marks_insignificant_but_keeps_row():
    deltas = diff_flat({"x": 100}, {"x": 103}, bands={"x": 5.0})
    (d,) = deltas
    assert d.delta == 3 and d.band == 5.0 and not d.significant
    (d,) = diff_flat({"x": 100}, {"x": 110}, bands={"x": 5.0})
    assert d.significant


# -- DiffReport -------------------------------------------------------------

def _report(deltas):
    return DiffReport(a_label="a", b_label="b", a_fingerprint="fa",
                      b_fingerprint="fb", window="steady", deltas=deltas)


def test_top_movers_ranking_abs_and_rel():
    deltas = [
        ProbeDelta("big_abs", 1000, 1100, 100, 0.1),
        ProbeDelta("big_rel", 2, 6, 4, 2.0),
        ProbeDelta("appeared", 0, 9, 9, None),
        ProbeDelta("noise", 50, 51, 1, 0.02, band=5.0, significant=False),
    ]
    report = _report(deltas)
    assert [d.name for d in report.top_movers(2, key="abs")] == \
        ["big_abs", "appeared"]
    # rel ranking: appearance (rel None) sorts first, then by |rel|.
    assert [d.name for d in report.top_movers(2, key="rel")] == \
        ["appeared", "big_rel"]
    # The noise row is excluded unless asked for.
    assert "noise" not in {d.name for d in report.top_movers(10)}
    assert "noise" in {d.name for d in
                       report.top_movers(10, significant_only=False)}
    with pytest.raises(ValueError):
        report.top_movers(key="median")


def test_render_and_json_round_trip():
    report = _report([ProbeDelta("os.x", 1, 3, 2, 2.0),
                      ProbeDelta("os.y", 0, 5, 5, None)])
    text = report.render()
    assert "os.x" in text and "+200.0%" in text and "new" in text
    assert "2 probe(s) differ" in text
    payload = report.to_json_dict()
    assert payload["a"] == {"label": "a", "fingerprint": "fa"}
    assert payload["deltas"][0]["name"] == "os.x"
    json.dumps(payload)  # must be JSON-serializable as-is


# -- noise bands ------------------------------------------------------------

def test_seed_specs_consecutive_seeds():
    fan = seed_specs({"workload": "specint", "cpu": "smt",
                      "os_mode": "full", "seed": 40}, 3)
    assert [s["seed"] for s in fan] == [40, 41, 42]
    assert all(s["workload"] == "specint" for s in fan)


def test_mean_and_band_known_values():
    windows = [
        {"cycles": 10, "retired": 20, "probes": {"x": 10}},
        {"cycles": 10, "retired": 20, "probes": {"x": 14}},
    ]
    mean, band = mean_and_band(windows)
    assert mean["x"] == pytest.approx(12.0)
    # 2 * sample stdev of [10, 14] = 2 * 2.828...
    assert band["x"] == pytest.approx(2.0 * 2.0 ** 1.5)
    mean1, band1 = mean_and_band(windows[:1])
    assert band1["x"] == 0.0  # one window: no noise estimate


def test_diff_runs_same_spec_has_no_changes():
    spec = {"workload": "specint", "cpu": "smt", "os_mode": "full"}
    report = diff_runs(spec, dict(spec), max_workers=1)
    assert report.changed == []


def test_diff_runs_seed_fanout_builds_bands(monkeypatch):
    spec_a = {"workload": "specint", "cpu": "smt", "os_mode": "app"}
    spec_b = {"workload": "specint", "cpu": "smt", "os_mode": "full"}
    report = diff_runs(spec_a, spec_b, seeds=2, max_workers=1)
    assert report.seeds == 2
    assert report.a_label == "specint-smt-app"
    # Seed repeats perturb at least some probes, so some bands are > 0.
    assert any(d.band > 0 for d in report.deltas)
    # OS-mode full adds kernel work regardless of seed noise: the spin
    # counters appear from zero and must survive the noise filter.
    spin = report.delta("os.spin_instructions")
    assert spin is not None and spin.delta > 0 and spin.significant
    # A second identical call is served entirely by the store.
    experiments.clear_cache()
    monkeypatch.setattr(
        experiments, "execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("diff_runs re-ran a stored spec")))
    again = diff_runs(spec_a, spec_b, seeds=2, max_workers=1)
    assert [d.name for d in again.deltas] == [d.name for d in report.deltas]


# -- the paper's comparisons, from stored artifacts alone -------------------

def test_diff_reproduces_table4_os_impact_signs_without_resimulating(
        monkeypatch):
    """Acceptance: diffing the stored superscalar and 8-context SMT
    artifacts reproduces the sign of the paper's Table 4 OS-impact story
    -- SMT converts idle issue slots into throughput -- with execution
    disabled to prove no re-simulation happens."""
    for cpu in ("ss", "smt"):
        experiments.get_run("specint", cpu, "full")
    experiments.clear_cache()  # drop the memo; only the store remains
    monkeypatch.setattr(
        experiments, "execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("diff re-simulated a stored run")))

    art_ss = experiments.get_run("specint", "ss", "full")
    art_smt = experiments.get_run("specint", "smt", "full")
    report = diff_artifacts(art_ss, art_smt, window="steady")

    # Table 4 headline: the 8-context SMT sustains far higher IPC.
    assert report.delta("derived.ipc").delta > 0
    # ...because wholly-idle fetch/issue cycles nearly disappear.
    assert report.delta("core.zero_fetch_cycles").delta < 0
    assert report.delta("core.zero_issue_cycles").delta < 0


def test_diff_reproduces_os_onoff_probe_signs(monkeypatch):
    """app -> full turns the OS on: every os.* kernel-activity probe and
    the kernel-mode cache traffic must appear with a positive sign."""
    for mode in ("app", "full"):
        experiments.get_run("specint", "smt", mode)
    experiments.clear_cache()
    monkeypatch.setattr(
        experiments, "execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("diff re-simulated a stored run")))

    report = diff_artifacts(experiments.get_run("specint", "smt", "app"),
                            experiments.get_run("specint", "smt", "full"))
    for probe in ("os.spin_instructions", "mem.l1d.accesses.kernel",
                  "mem.dtlb.accesses.kernel"):
        d = report.delta(probe)
        assert d is not None and d.delta > 0, probe
        assert d.rel is None  # appeared: the app run has no kernel at all


def test_per_kilo_normalizes_counts_but_not_rates():
    art_a = experiments.get_run("specint", "ss", "full")
    art_b = experiments.get_run("specint", "smt", "full")
    raw = diff_artifacts(art_a, art_b)
    scaled = diff_artifacts(art_a, art_b, per_kilo=True)
    ipc_raw, ipc_scaled = raw.delta("derived.ipc"), scaled.delta("derived.ipc")
    assert ipc_scaled.a == pytest.approx(ipc_raw.a)  # rates untouched
    ret = scaled.delta("derived.retired")
    assert ret is None or (ret.a == pytest.approx(1000.0)
                           and ret.b == pytest.approx(1000.0))


# -- CLI --------------------------------------------------------------------

def test_cli_diff_labels_and_json(tmp_path, capsys):
    out = tmp_path / "diff.json"
    assert cli.main(["diff", "specint-smt-app", "specint-smt-full",
                     "--json", str(out)]) == 0
    text = capsys.readouterr().out
    assert "probe(s) differ" in text
    payload = json.loads(out.read_text())
    assert payload["a"]["label"] == "specint-smt-app"
    assert payload["deltas"]

    # Existing --json output is protected; --force overrides.
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        cli.main(["diff", "specint-smt-app", "specint-smt-full",
                  "--json", str(out)])
    assert cli.main(["diff", "specint-smt-app", "specint-smt-full",
                     "--json", str(out), "--force"]) == 0


def test_cli_diff_accepts_artifact_files(tmp_path, capsys):
    art = experiments.get_run("specint", "smt", "full")
    path = tmp_path / "art.json"
    path.write_text(art.dumps())
    assert cli.main(["diff", str(path), "specint-smt-app"]) == 0
    assert "probe(s) differ" in capsys.readouterr().out


def test_cli_diff_rejects_bad_label():
    with pytest.raises(SystemExit, match="bad run"):
        cli.main(["diff", "specint-smt", "specint-smt-full"])
    with pytest.raises(SystemExit, match="--seeds needs run labels"):
        cli.main(["diff", "a.json", "specint-smt-full", "--seeds", "2"])


def test_cli_counters_against(capsys):
    assert cli.main(["counters", "specint", "--against", "specint-smt-app",
                     "--grep", "derived."]) == 0
    out = capsys.readouterr().out
    assert "derived.ipc" in out
    assert "a=specint-smt-app" in out

    assert cli.main(["counters", "specint", "--against", "specint-smt-app",
                     "--grep", "nosuch."]) == 1
    assert "no probes match" in capsys.readouterr().out
