"""Tests for the hierarchical probe registry (repro.obs.registry)."""

import pytest

from repro.obs.registry import (
    NULL_COUNTER,
    NULL_REGISTRY,
    Counter,
    CounterGroup,
    Histogram,
    ProbeRegistry,
    register_miss_stats,
)


# -- counters ---------------------------------------------------------------

def test_counter_register_bump_snapshot_round_trip():
    reg = ProbeRegistry()
    c = reg.counter("os.syscall.read.count")
    c.add()
    c.add(4)
    c.inc()
    assert reg.snapshot() == {"os.syscall.read.count": 6}


def test_counter_registration_is_idempotent():
    reg = ProbeRegistry()
    a = reg.counter("mem.l1d.flushes")
    b = reg.counter("mem.l1d.flushes")
    assert a is b
    a.add()
    assert reg.snapshot()["mem.l1d.flushes"] == 1


def test_invalid_names_rejected():
    reg = ProbeRegistry()
    for bad in ("", "Mem.l1d", "mem..l1d", ".mem", "mem l1d"):
        with pytest.raises(ValueError):
            reg.counter(bad)


def test_cross_flavor_duplicate_rejected():
    reg = ProbeRegistry()
    reg.counter("os.ticks")
    with pytest.raises(ValueError):
        reg.derive("os.ticks", lambda: 0)
    with pytest.raises(ValueError):
        reg.histogram("os.ticks")


# -- disabled mode ----------------------------------------------------------

def test_disabled_registry_hands_out_shared_null_counter():
    reg = ProbeRegistry(enabled=False)
    a = reg.counter("mem.l1d.flushes")
    b = reg.counter("os.syscall.read.count")
    assert a is b is NULL_COUNTER
    a.add(1000)
    assert NULL_COUNTER.value == 0
    assert reg.snapshot() == {}
    assert len(reg) == 0


def test_disabled_registry_drops_derived_probes():
    calls = []
    NULL_REGISTRY.derive("mem.l1d.accesses", lambda: calls.append(1) or 1)
    NULL_REGISTRY.derive_map("os.syscall", lambda: {"read.count": 1})
    assert NULL_REGISTRY.snapshot() == {}
    assert calls == []  # never evaluated


# -- derived probes ---------------------------------------------------------

def test_derived_probe_evaluated_at_snapshot_time():
    reg = ProbeRegistry()
    box = {"hits": 0}
    reg.derive("mem.l2.hits", lambda: box["hits"])
    assert reg.snapshot()["mem.l2.hits"] == 0
    box["hits"] = 7
    assert reg.snapshot()["mem.l2.hits"] == 7


def test_derive_map_expands_dynamic_keys():
    reg = ProbeRegistry()
    counts = {}
    reg.derive_map("os.syscall", lambda: {f"{n}.count": v
                                          for n, v in counts.items()})
    assert reg.snapshot() == {}
    counts["read"] = 3
    counts["write"] = 1
    snap = reg.snapshot()
    assert snap["os.syscall.read.count"] == 3
    assert snap["os.syscall.write.count"] == 1
    with pytest.raises(ValueError):
        reg.derive_map("os.syscall", lambda: {})


def test_snapshot_prefix_filter_and_sorted_keys():
    reg = ProbeRegistry()
    reg.counter("mem.l1d.flushes").add()
    reg.counter("branch.cond.predictions").add(2)
    reg.derive("mem.l2.hits", lambda: 5)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert set(reg.snapshot(prefix="mem.")) == {"mem.l1d.flushes",
                                                "mem.l2.hits"}
    assert reg.names() == sorted(snap)


# -- histograms -------------------------------------------------------------

def test_histogram_buckets_and_overflow():
    h = Histogram("os.syscall_latency_cycles", bounds=(10, 100))
    for v in (1, 10, 11, 100, 5000):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == 5122
    assert snap["buckets"] == [2, 2, 1]  # <=10, <=100, overflow
    assert snap["bounds"] == [10, 100]  # self-describing for percentiles


def test_histogram_bounds_must_ascend():
    with pytest.raises(ValueError):
        Histogram("x", bounds=(10, 5))
    with pytest.raises(ValueError):
        Histogram("x", bounds=())


def test_histogram_through_registry_snapshot():
    reg = ProbeRegistry()
    h = reg.histogram("os.syscall_latency_cycles", bounds=(10,))
    h.observe(3)
    snap = reg.snapshot()["os.syscall_latency_cycles"]
    assert snap == {"count": 1, "sum": 3, "bounds": [10], "buckets": [1, 0]}


def test_histogram_percentiles():
    h = Histogram("os.syscall_latency_cycles", bounds=(10, 100, 1000))
    for v in (5,) * 50 + (50,) * 40 + (500,) * 9 + (5000,):
        h.observe(v)
    # p50 falls exactly at the end of the first bucket (50 of 100 obs).
    assert h.p50 == pytest.approx(10.0)
    # p95: rank 95 is the 5th of 9 observations in (100, 1000].
    assert h.p95 == pytest.approx(100 + 900 * 5 / 9)
    assert h.p99 == pytest.approx(1000.0)
    assert h.percentile(1.0) == pytest.approx(1000.0)  # overflow clips
    with pytest.raises(ValueError):
        h.percentile(0.0)
    assert Histogram("x", bounds=(4,)).p95 == 0.0  # empty histogram


def test_snapshot_percentile_matches_live_histogram():
    from repro.obs.registry import snapshot_percentile

    h = Histogram("os.syscall_latency_cycles")
    for v in (3, 17, 40, 900, 20000):
        h.observe(v)
    snap = h.snapshot()
    for q in (0.5, 0.95, 0.99):
        assert snapshot_percentile(snap, q) == pytest.approx(h.percentile(q))
    # Pre-v3 snapshots (no bounds) fall back to the default buckets.
    legacy = {k: v for k, v in snap.items() if k != "bounds"}
    assert snapshot_percentile(legacy, 0.5) == pytest.approx(h.p50)


# -- CounterGroup -----------------------------------------------------------

def test_counter_group_preserves_dict_idiom():
    reg = ProbeRegistry()
    grp = CounterGroup(reg, "os", ("spin_instructions", "icache_flushes"))
    grp["spin_instructions"] += 3
    grp["icache_flushes"] = 2
    assert dict(grp) == {"spin_instructions": 3, "icache_flushes": 2}
    assert reg.snapshot()["os.spin_instructions"] == 3
    with pytest.raises(KeyError):
        grp["unknown"]
    with pytest.raises(TypeError):
        del grp["spin_instructions"]


def test_counter_group_falls_back_when_registry_disabled():
    grp = CounterGroup(ProbeRegistry(enabled=False), "os", ("ticks",))
    grp["ticks"] += 5
    assert grp["ticks"] == 5  # counts survive even without a registry


# -- miss-stats bridge ------------------------------------------------------

def test_register_miss_stats_exposes_live_structure():
    from repro.memory.classify import MissStats

    stats = MissStats()
    reg = ProbeRegistry()
    register_miss_stats(reg, "mem.l1d", stats)
    assert reg.snapshot()["mem.l1d.accesses.user"] == 0
    stats.accesses[0] += 9
    stats.misses[1] += 2
    snap = reg.snapshot()
    assert snap["mem.l1d.accesses.user"] == 9
    assert snap["mem.l1d.miss.kernel"] == 2


def test_null_counter_is_a_counter():
    assert isinstance(NULL_COUNTER, Counter)
