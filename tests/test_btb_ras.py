"""Tests for the BTB and return-address stacks."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.memory.classify import MissCause


def test_btb_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=10, assoc=4)


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(64, 4)
    assert btb.lookup(0x100, 0, 0) is None
    btb.insert(0x100, 0x500, 0, 0)
    assert btb.lookup(0x100, 0, 0) == 0x500


def test_btb_peek_has_no_stats():
    btb = BranchTargetBuffer(64, 4)
    btb.insert(0x100, 0x500, 0, 0)
    assert btb.peek(0x100) == 0x500
    assert btb.peek(0x104) is None
    assert sum(btb.stats.accesses) == 0


def test_btb_update_existing_entry():
    btb = BranchTargetBuffer(64, 4)
    btb.insert(0x100, 0x500, 0, 0)
    btb.insert(0x100, 0x900, 1, 1)
    assert btb.peek(0x100) == 0x900


def test_btb_target_mispredict_counted_in_rate():
    btb = BranchTargetBuffer(64, 4)
    btb.insert(0x100, 0x500, 0, 0)
    btb.lookup(0x100, 0, 0)
    assert btb.miss_rate(0) == 0.0
    btb.record_target_mispredict(0)
    assert btb.miss_rate(0) == pytest.approx(1.0)


def test_btb_first_miss_is_compulsory():
    btb = BranchTargetBuffer(64, 4)
    btb.lookup(0x200, 0, 0)
    assert btb.stats.causes == {(0, int(MissCause.COMPULSORY)): 1}


def test_btb_capacity_and_eviction_classification():
    btb = BranchTargetBuffer(4, 1)  # 4 direct-mapped sets
    # Fill far more sites than capacity; then re-probe an early one.
    for i in range(64):
        btb.insert(0x1000 + i * 4, 0x2000, tid=1, kind=0)
    btb.lookup(0x1000, 0, 0)
    causes = btb.stats.causes
    assert (0, int(MissCause.INTRATHREAD)) in causes or \
           (0, int(MissCause.INTERTHREAD)) in causes


def test_btb_flush_all():
    btb = BranchTargetBuffer(64, 4)
    btb.insert(0x100, 0x500, 0, 0)
    assert btb.flush_all() == 1
    assert btb.peek(0x100) is None
    btb.lookup(0x100, 0, 0)
    assert btb.stats.causes.get((0, int(MissCause.INVALIDATION))) == 1


def test_ras_lifo():
    ras = ReturnAddressStack(4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10


def test_ras_underflow_returns_none():
    ras = ReturnAddressStack(4)
    assert ras.pop() is None
    assert ras.underflows == 1


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(2)
    ras.push(0x10)
    ras.push(0x20)
    ras.push(0x30)
    assert ras.pop() == 0x30
    assert ras.pop() == 0x20
    assert ras.pop() is None  # 0x10 was overwritten


def test_ras_clear():
    ras = ReturnAddressStack(4)
    ras.push(0x10)
    ras.clear()
    assert len(ras) == 0


def test_ras_depth_validation():
    with pytest.raises(ValueError):
        ReturnAddressStack(0)
