"""Crash-recovery tests for ``repro serve`` (satellite of the resilient
service): SIGKILL a live service subprocess at deterministic fault
points -- after the 1st, 2nd, and 3rd journaled completion -- then
resume, and prove the recovered sweep is byte-identical to an
uninterrupted one (same ledger, same stored artifact fingerprints, no
lost or duplicated runs)."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.analysis import experiments
from repro.analysis import queue as jobqueue
from repro.analysis.queue import JobQueue, queue_root
from repro.analysis.service import run_service
from repro.analysis.store import RunStore

#: Seconds to wait for the victim subprocess to reach its kill point.
_KILL_DEADLINE = 90.0


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-store"))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    faults.clear()
    yield
    experiments.clear_cache()
    faults.clear()


def _specs():
    return [{"workload": "specint", "cpu": "smt", "os_mode": "app",
             "instructions": 800, "seed": seed} for seed in (1, 2, 3, 4)]


def _baseline(tmp_path):
    """An uninterrupted sweep of the same specs in a sibling store."""
    store = RunStore(tmp_path / "baseline-store")
    report = run_service(_specs(), store=store, isolation="inline",
                         backoff_base=0.01)
    assert report.ok
    experiments.clear_cache()
    return store, report


def _serve_subprocess(store_root, spec_file):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(store_root)
    # A fault plan armed by some other test must not leak into the child.
    env.pop(faults.FAULT_PLAN_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spec-file",
         str(spec_file), "--isolation", "inline"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _kill_after_completes(proc, journal, wanted):
    """SIGKILL *proc* once the journal shows *wanted* completions.

    Polling the journal (not the process) makes the fault point
    deterministic in *observable effect*: the kill always lands with
    exactly >= `wanted` durable completions, wherever the host happens
    to schedule it.  Returns how many completions were journaled when
    the process died.
    """
    deadline = time.monotonic() + _KILL_DEADLINE
    while time.monotonic() < deadline and proc.poll() is None:
        try:
            if journal.read_text().count('"op": "complete"') >= wanted:
                break
        except OSError:
            pass  # journal not created yet
        time.sleep(0.005)
    if proc.poll() is None:
        proc.kill()
    proc.wait()
    try:
        return journal.read_text().count('"op": "complete"')
    except OSError:
        return 0


def _artifact_fingerprints(store):
    return sorted(entry.fingerprint for entry in store.entries()
                  if entry.kind == "run")


@pytest.mark.parametrize("kill_after", [1, 2, 3])
def test_sigkill_then_resume_is_byte_identical(tmp_path, kill_after):
    baseline_store, baseline = _baseline(tmp_path)
    specs = _specs()
    victim = RunStore(tmp_path / "victim-store")
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(json.dumps(specs))
    journal = queue_root(victim.root) / jobqueue.JOURNAL_NAME

    proc = _serve_subprocess(victim.root, spec_file)
    completes = _kill_after_completes(proc, journal, kill_after)
    assert completes >= kill_after  # the fault point was really reached

    experiments.clear_cache()
    resumed = run_service(specs, store=victim, isolation="inline",
                          resume=True, backoff_base=0.01)
    assert resumed.ok
    assert resumed.counts[jobqueue.DONE] == len(specs)
    assert resumed.counts[jobqueue.PENDING] == 0
    assert resumed.counts[jobqueue.CLAIMED] == 0
    # No lost and no duplicated work: the queue ledger and the stored
    # artifact set are byte-identical to the uninterrupted run's.
    assert resumed.ledger == baseline.ledger
    assert _artifact_fingerprints(victim) \
        == _artifact_fingerprints(baseline_store)
    # The journal itself replays to the same terminal state.
    replayed = JobQueue(queue_root(victim.root))
    assert replayed.ledger() == baseline.ledger
    assert not replayed.replayed.orphans


def test_resume_after_clean_run_changes_nothing(tmp_path):
    """Control: resuming an *uninterrupted* sweep is a no-op."""
    baseline_store, baseline = _baseline(tmp_path)
    again = run_service(_specs(), store=baseline_store, isolation="inline",
                        resume=True, backoff_base=0.01)
    assert again.ok and again.warm_hits == 0  # journal says done already
    assert again.ledger == baseline.ledger
    assert again.replay["clean_shutdown"]
