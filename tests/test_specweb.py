"""Tests for the SPECWeb96-like file set and client model."""

import random

import pytest

from repro.isa.data import Region
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.packets import Packet
from repro.net.stack import NetworkStack
from repro.os_model.kernel import MiniDUX
from repro.workloads.specweb import SpecWebClients, SpecWebFileSet


@pytest.fixture
def filecache():
    return Region("fc", 0x8_0000_0000_0000, 128, 24, phys=True)


def test_fileset_has_36_files(filecache):
    fs = SpecWebFileSet(filecache)
    assert len(fs.files) == 36


def test_fileset_sizes_scale(filecache):
    full = SpecWebFileSet(filecache, scale_div=1)
    scaled = SpecWebFileSet(filecache, scale_div=8)
    assert max(f.size for f in full.files) == 102400 * 9
    assert max(f.size for f in scaled.files) == 102400 * 9 // 8
    assert min(f.size for f in scaled.files) >= 128


def test_fileset_class_mix(filecache):
    fs = SpecWebFileSet(filecache)
    rng = random.Random(0)
    counts = [0, 0, 0, 0]
    for _ in range(20000):
        f = fs.pick(rng)
        counts[f.file_id // 9] += 1
    total = sum(counts)
    assert counts[0] / total == pytest.approx(0.35, abs=0.03)
    assert counts[1] / total == pytest.approx(0.50, abs=0.03)
    assert counts[2] / total == pytest.approx(0.14, abs=0.03)
    assert counts[3] / total == pytest.approx(0.01, abs=0.01)


def test_fileset_extents_inside_filecache(filecache):
    fs = SpecWebFileSet(filecache)
    for f in fs.files:
        assert filecache.contains(fs.extent_address(f.file_id))


def test_fileset_scale_validation(filecache):
    with pytest.raises(ValueError):
        SpecWebFileSet(filecache, scale_div=0)


@pytest.fixture
def client_rig():
    osk = MiniDUX(MemoryHierarchy(), n_contexts=1, rng=random.Random(7))
    stack = NetworkStack(osk, random.Random(8), n_netisr=1)
    fs = SpecWebFileSet(osk.reg_filecache)
    clients = SpecWebClients(osk, stack, fs, random.Random(9),
                             n_clients=4, think_mean=500, rampup=100)
    return osk, stack, clients


def test_clients_send_initial_requests(client_rig):
    osk, stack, clients = client_rig
    clients.tick(10_000)
    assert clients.requests_sent == 4
    assert stack.nic.packets_received == 4


def test_closed_loop_response_completion(client_rig):
    osk, stack, clients = client_rig
    clients.tick(10_000)
    conn_id = next(iter(clients._expecting))
    conn = stack.connections[conn_id]
    conn.bytes_to_send = 100
    osk.now = 20_000
    clients.receive(Packet(conn_id, 100, "resp"))
    assert clients.responses_completed == 1
    assert conn_id not in clients._expecting
    # The client goes back on the think heap for a future request.
    assert any(c == conn.client_id for _, c in clients._due)


def test_response_generates_ack_or_fin(client_rig):
    osk, stack, clients = client_rig
    clients.tick(10_000)
    before = stack.nic.packets_received
    conn_id = next(iter(clients._expecting))
    stack.connections[conn_id].bytes_to_send = 100
    osk.now = 20_000
    clients.receive(Packet(conn_id, 100, "resp"))
    # ack (p=1.0) + fin arrive back at the NIC.
    assert stack.nic.packets_received >= before + 2


def test_unknown_connection_packets_ignored(client_rig):
    _, _, clients = client_rig
    clients.receive(Packet(9999, 100, "resp"))
    assert clients.responses_completed == 0
