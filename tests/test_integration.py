"""End-to-end integration tests: small but complete simulations.

These run the full stack -- workload, MiniDUX, processor, memory system --
for a few tens of thousands of instructions each, checking cross-module
invariants the unit tests cannot see.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.simulator import Simulation
from repro.os_model.kernel import OSMode
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload

BUDGET = 120_000


@pytest.fixture(scope="module")
def specint_result():
    sim = Simulation(SpecIntWorkload(), seed=21)
    return sim.run(max_instructions=BUDGET)


@pytest.fixture(scope="module")
def apache_result():
    sim = Simulation(ApacheWorkload(), seed=22)
    return sim.run(max_instructions=BUDGET)


def test_specint_executes_all_modes(specint_result):
    stats = specint_result.stats
    assert stats.retired >= BUDGET
    assert stats.retired_by_mode[0] > 0  # user
    assert stats.retired_by_mode[1] > 0  # kernel
    assert stats.retired_by_mode[2] > 0  # PAL


def test_specint_reasonable_ipc(specint_result):
    assert 1.0 < specint_result.ipc <= 8.0


def test_cycle_accounting_consistent(specint_result):
    stats = specint_result.stats
    n = specint_result.machine.cpu.n_contexts
    assert sum(stats.service_cycles.values()) == stats.cycles * n
    assert sum(stats.class_cycles) == stats.cycles * n


def test_retired_never_exceeds_fetched(specint_result):
    stats = specint_result.stats
    assert stats.retired <= stats.fetched
    # Every fetched instruction either retires, is squashed, or is still in
    # flight (replayed instructions count a fetch per admission).
    assert stats.fetched >= stats.retired + stats.squashed


def test_memory_structures_saw_traffic(specint_result):
    h = specint_result.hierarchy
    assert sum(h.l1i.stats.accesses) > 0
    assert sum(h.l1d.stats.accesses) > 0
    assert sum(h.l2.stats.accesses) > 0
    assert sum(h.dtlb.stats.accesses) > 0
    assert sum(h.itlb.stats.accesses) > 0
    # Kernel code ran, so kernel-kind accesses exist.
    assert h.l1d.stats.accesses[1] > 0


def test_kernel_phys_accesses_bypass_dtlb(specint_result):
    stats = specint_result.stats
    # Some kernel memory operations used physical addressing...
    assert stats.phys_mem_by_mode[1] + stats.phys_mem_by_mode[2] > 0
    # ...and no user ones did.
    assert stats.phys_mem_by_mode[0] == 0


def test_page_allocations_happened(specint_result):
    assert specint_result.os.vm.incursions["page_allocation"] > 0


def test_syscalls_dispatched(specint_result):
    counts = specint_result.os.syscall_counts
    # Program starts are staggered; within this small budget at least some
    # programs must have exec'd, never more than the eight that exist.
    assert 1 <= counts.get("execve", 0) <= 8
    # File activity follows exec closely; at least the opens started.
    assert counts.get("read", 0) + counts.get("open", 0) > 0


def test_determinism_same_seed():
    a = Simulation(SpecIntWorkload(), seed=33).run(max_instructions=30_000)
    b = Simulation(SpecIntWorkload(), seed=33).run(max_instructions=30_000)
    assert a.stats.cycles == b.stats.cycles
    assert a.stats.retired_by_mode == b.stats.retired_by_mode
    assert a.hierarchy.l1d.stats.misses == b.hierarchy.l1d.stats.misses


def test_different_seeds_diverge():
    a = Simulation(SpecIntWorkload(), seed=33).run(max_instructions=30_000)
    b = Simulation(SpecIntWorkload(), seed=34).run(max_instructions=30_000)
    assert a.stats.cycles != b.stats.cycles


def test_app_only_mode_runs_without_kernel_instructions():
    sim = Simulation(SpecIntWorkload(), os_mode=OSMode.APP_ONLY, seed=23)
    result = sim.run(max_instructions=40_000)
    assert result.stats.retired_by_mode[1] == 0
    assert result.stats.retired_by_mode[2] == 0
    assert result.ipc > 1.0


def test_superscalar_runs_and_is_slower():
    smt = Simulation(SpecIntWorkload(), seed=24).run(max_instructions=40_000)
    ss = Simulation(SpecIntWorkload(), machine=MachineConfig.superscalar(),
                    seed=24).run(max_instructions=40_000)
    assert ss.machine.cpu.n_contexts == 1
    assert ss.ipc < smt.ipc


def test_apache_serves_requests(apache_result):
    wl = apache_result.workload
    assert wl.clients.requests_sent > 0
    assert wl.stack.packets_processed > 0
    assert apache_result.os.syscall_counts.get("accept", 0) > 0


def test_apache_is_kernel_dominated(apache_result):
    stats = apache_result.stats
    kernel = stats.class_share(1) + stats.class_share(2)
    assert kernel > 0.5


def test_apache_network_services_exercised(apache_result):
    shares = apache_result.stats.service_cycle_shares()
    assert shares.get("netisr", 0) > 0
    assert any(s.startswith("intr:net") for s in shares)


def test_omit_kernel_refs_keeps_structures_user_only():
    sim = Simulation(SpecIntWorkload(), seed=25, omit_kernel_refs=True)
    result = sim.run(max_instructions=40_000)
    assert result.hierarchy.l1d.stats.accesses[1] == 0
    assert result.hierarchy.l1d.stats.accesses[0] > 0
    # Kernel instructions still executed (this is not app-only mode).
    assert result.stats.retired_by_mode[1] > 0


def test_context_switches_and_asn_assignment(apache_result):
    sched = apache_result.os.scheduler
    assert sched.switches > 0
    assigned = {t.process.asn for t in apache_result.workload.threads
                if t.process.asn > 0}
    assert assigned  # processes received ASNs
