"""Fixture: one seeded violation per P-rule (see tests/test_lint.py)."""


class Metrics:
    def __init__(self, registry):
        self.registry = registry
        self.hits = registry.counter("mem.cache.hits")
        registry.counter("mem.cache.orphan")  # P102: handle discarded
        self.bad = registry.counter("bogus.cache.hits")  # P103: bad root

    def report(self):
        good = self.registry.get("mem.cache.hits")
        typo = self.registry.get("mem.cache.hit")  # P101: never registered
        return good, typo
