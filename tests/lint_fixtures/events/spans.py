"""Fixture: span pairing shapes, good and bad (E101), event kinds (E102)."""


class Tracker:
    def ok_lexical(self, obs, work):
        obs._span_begin("os", "syscall")
        try:
            work()
        finally:
            obs._span_end("os", "syscall")

    def ok_closure(self, obs, frame):
        # Deferred completion-callback discipline: the end fires when
        # the frame retires, inside a closure of the same scope.
        obs._span_begin("os", "interrupt")

        def on_complete(now):
            obs._span_end("os", "interrupt")

        frame.on_complete = on_complete

    def missing(self, obs):
        obs._span_begin("os", "fault")  # E101: no end anywhere

    def escape(self, obs, work):
        obs._span_begin("os", "tick")  # E101: early return skips the end
        if work():
            return
        obs._span_end("os", "tick")

    def orphan(self, obs):
        obs._span_end("os", "orphan")  # E101: no begin in scope


def emit_ok(bus, now):
    bus.emit(now, "pipeline", "squash")


def emit_bad(bus, now):
    bus.emit(now, "vmx", "flush")  # E102: kind not in KINDS
