"""Fixture: default timeline columns vs. the static probe manifest."""

DEFAULT_TIMELINE_PROBES = (
    "core.retired",    # registered below: resolves
    "bogus.retired",   # E103: no registration site produces it
)


def register_probes(registry):
    registry.derive("core.retired", lambda: 0)
