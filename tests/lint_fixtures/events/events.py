"""Fixture event-kind registry (mirrors ``repro/obs/events.py``)."""

PIPELINE = "pipeline"
SCHED = "sched"

KINDS = (PIPELINE, SCHED)
