"""Fixture: hot-path churn reachable from both tier-driver roots.

``Simulation._run_once`` and ``_fast_once`` are the loop roots the
H rules seed the hot set from; ``Worker.step`` and ``_helper`` are
pulled in through their cycle loops and exhibit one of each flagged
construct.  ``cold`` repeats the same constructs outside the hot set
and must stay clean, as must the loop roots' own prologues (run once
per leg, not per cycle).
"""


class Stats:
    def __init__(self):
        self.core = None


class Worker:
    def __init__(self):
        self.stats = Stats()

    def step(self, items):
        squares = [x * x for x in items]    # H101
        label = f"step-{len(items)}"        # H102
        table = {"a": 1}                    # H103
        total = 0
        try:                                # H105
            for x in squares:
                # H106: four-link chain re-resolved inside the loop
                total += self.stats.core.counts.retired + x
        except AttributeError:
            total = -1
        # H104: lambda created per cycle
        return sorted(squares, key=lambda v: v - total), label, table


class Simulation:
    def __init__(self):
        self.worker = Worker()

    def _run_once(self, items):
        prologue = {"cold": True}  # once per leg: must not be flagged
        n = 0
        while n < len(items):
            self.worker.step(items)
            n += 1
        return prologue


def _helper(values):
    uniq = {v for v in values}  # H101 (set comprehension)
    return len(uniq)


def _fast_once(sim, items):
    header = [1, 2, 3]  # once per leg: must not be flagged
    while items:
        _helper(items)
        items = items[:-1]
    return header


def cold(items):
    # Same constructs, unreachable from any hot root: must stay clean.
    squares = [x * x for x in items]
    return {"cold": squares}, f"cold-{len(items)}"
