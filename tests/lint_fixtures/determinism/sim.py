"""Fixture: one seeded violation per D-rule (see tests/test_lint.py)."""

import glob
import random
import time


def jitter():
    return random.random()  # D101


def stamp():
    return time.time()  # D102


def drain(items):
    for item in {1, 2, 3}:  # D103
        items.append(item)
    for path in glob.glob("*.json"):  # D104
        items.append(path)
    return sorted(items, key=id)  # D105


def host_side_jitter():
    return random.random()  # lint: ignore[D101]


def shielded(paths):
    # Order-insensitive consumers: none of these may be flagged.
    ordered = sorted(glob.glob("*.json"))
    count = len({1, 2, 3})
    total = sum(x for x in {4, 5, 6})
    return ordered, count, total
