"""Fixture: S101 -- a config field the fingerprint never sees."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureConfig:
    width: int = 4
    depth: int = 2  # S101: sim_params below never references this


def sim_params(machine):
    return {"width": machine.width}
