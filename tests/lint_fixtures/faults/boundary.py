"""Fixture: process-boundary callables (F102) and worker env reads (F103)."""

import os
from multiprocessing import Process


def job(spec):
    seed = os.environ.get("REPRO_SEED", "0")  # forwarded namespace: clean
    user = os.environ.get("USER", "")         # F103: host-only env var
    return seed, user


def run(pool, spec):
    pool.submit(job, spec)              # module-level function: clean
    pool.submit(lambda: 1)              # F102: lambda across the boundary
    return Process(target=job, args=(spec,))


def coordinator():
    # Coordinator-side read, not in the worker closure: must not flag.
    return os.environ.get("HOME", "")
