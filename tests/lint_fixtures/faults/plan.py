"""Fixture fault-site registry (mirrors ``repro/faults/plan.py``)."""

KNOWN_SITES: tuple[str, ...] = (
    "mem.read.flip",
    "sched.pick.stall",  # F101 converse: registered but never fired
)


def inject(faults):
    faults.fire("mem.read.flip")  # registered: clean
    faults.fire("mem.read.flop")  # F101: unknown site
