"""Tests for synthetic code models and walkers."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.code import (
    CodeModel,
    CodeModelConfig,
    CodeWalker,
    SegmentSpec,
    TERM_COND,
)
from repro.isa.data import DataModel, Region
from repro.isa.mix import BranchProfile, InstructionMix
from repro.isa.types import InstrType, Mode


def build_model(seed=0, n_blocks=100, hot=20, **cfg_kwargs):
    mix = InstructionMix(load=0.2, store=0.1, branch=0.15, fp=0.02)
    return CodeModel(CodeModelConfig(
        f"m{seed}", 0x1000_0000, mix,
        segments=(SegmentSpec("main", n_blocks, hot),),
        seed=seed, **cfg_kwargs,
    ))


def build_walker(model, seed=1):
    rng = random.Random(seed)
    data = DataModel([Region("d", 0x2000_0000, 8, 4)], rng)
    return CodeWalker(model, rng, data, Mode.USER, "user", 1, 2)


def test_segments_validate():
    with pytest.raises(ValueError):
        SegmentSpec("bad", 1, 1)
    with pytest.raises(ValueError):
        SegmentSpec("bad", 10, 11)


def test_block_pcs_monotone_and_aligned():
    model = build_model()
    pcs = model.block_pc
    assert all(b % 4 == 0 for b in pcs)
    assert all(pcs[i] < pcs[i + 1] for i in range(len(pcs) - 1))


def test_model_deterministic_for_same_seed():
    a, b = build_model(seed=7), build_model(seed=7)
    assert a.block_pc == b.block_pc
    assert a.term_type == b.term_type
    assert a.taken_prob == b.taken_prob


def test_models_differ_across_seeds():
    a, b = build_model(seed=7), build_model(seed=8)
    assert a.term_type != b.term_type or a.block_pc != b.block_pc


def test_control_flow_closed_within_segment():
    model = build_model(n_blocks=80, hot=16)
    seg = model.segments["main"]
    for b in range(seg.start, seg.end):
        assert seg.start <= model.fallthrough[b] < seg.end
        if model.term_type[b] != 4:  # returns use the call stack
            targets = model.indirect_targets[b] or (model.target[b],)
            for t in targets:
                assert seg.start <= t < seg.end


def test_walk_stays_in_segment():
    model = CodeModel(CodeModelConfig(
        "two-seg", 0x1000_0000, InstructionMix(),
        segments=(SegmentSpec("a", 40, 8), SegmentSpec("b", 40, 8)),
        seed=3,
    ))
    walker = build_walker(model)
    seg_a = model.segments["a"]
    for _ in range(2000):
        walker.next_instruction()
        assert seg_a.start <= walker.block < seg_a.end
    walker.jump_to("b")
    seg_b = model.segments["b"]
    for _ in range(2000):
        walker.next_instruction()
        assert seg_b.start <= walker.block < seg_b.end


def test_dynamic_mix_tracks_static_mix():
    model = build_model(n_blocks=400, hot=60, seed=5)
    walker = build_walker(model)
    counts = Counter(walker.next_instruction().itype for _ in range(40000))
    total = sum(counts.values())
    assert counts[InstrType.LOAD] / total == pytest.approx(0.20, abs=0.09)
    assert counts[InstrType.FP_ALU] / total == pytest.approx(0.02, abs=0.025)
    branchy = sum(
        counts[t] for t in (InstrType.COND_BRANCH, InstrType.UNCOND_BRANCH,
                            InstrType.INDIRECT_JUMP, InstrType.CALL,
                            InstrType.RETURN))
    assert branchy / total == pytest.approx(0.15, abs=0.07)


def test_conditional_taken_rate_matches_target():
    # A single small model's visited-site composition is noisy (which hot
    # blocks carry high-bias branches is a small-sample draw), so average
    # over several models -- as the real workloads do over 8 programs.
    mix = InstructionMix(branch=0.15,
                         branches=BranchProfile(cond_taken=0.70))
    taken = total = 0
    for seed in range(6):
        model = CodeModel(CodeModelConfig(
            f"taken{seed}", 0x1000_0000, mix,
            segments=(SegmentSpec("main", 300, 50),), seed=seed))
        walker = build_walker(model, seed=seed + 100)
        for _ in range(25000):
            instr = walker.next_instruction()
            if instr.itype is InstrType.COND_BRANCH:
                total += 1
                taken += instr.taken
    assert taken / total == pytest.approx(0.70, abs=0.12)
    assert taken / total > 0.5


def test_branch_targets_are_real_block_pcs():
    model = build_model()
    walker = build_walker(model)
    pcs = set(model.block_pc)
    for _ in range(3000):
        instr = walker.next_instruction()
        if instr.is_branch:
            assert instr.target in pcs


def test_pc_advances_by_four_within_block():
    model = build_model()
    walker = build_walker(model)
    prev = None
    for _ in range(200):
        instr = walker.next_instruction()
        if prev is not None and not prev.is_branch:
            assert instr.pc == prev.pc + 4
        prev = instr


def test_call_return_uses_stack():
    model = build_model(seed=11, n_blocks=200, hot=40)
    walker = build_walker(model)
    for _ in range(20000):
        instr = walker.next_instruction()
        if instr.itype is InstrType.CALL:
            expected_return = instr.pc + 4
            depth = len(walker.call_stack)
            if depth:  # stack may cap out
                assert model.block_pc[walker.call_stack[-1]] == expected_return
            break
    else:
        pytest.skip("no call site visited")


def test_cond_sites_have_bimodal_bias():
    model = build_model(n_blocks=300, hot=50)
    probs = [model.taken_prob[b] for b in range(model.n_blocks)
             if model.term_type[b] == TERM_COND]
    assert probs
    middling = [p for p in probs if 0.35 < p < 0.65]
    assert len(middling) < len(probs) * 0.1


def test_indirect_sites_rotate_targets():
    model = build_model(seed=13, n_blocks=400, hot=60,
                        indirect_switch=1.0)
    walker = build_walker(model)
    targets_seen: dict[int, set] = {}
    for _ in range(40000):
        instr = walker.next_instruction()
        if instr.itype is InstrType.INDIRECT_JUMP:
            targets_seen.setdefault(instr.pc, set()).add(instr.target)
    multi = [pc for pc, ts in targets_seen.items() if len(ts) > 1]
    assert multi, "indirect jumps with switch probability 1 must vary targets"


@settings(max_examples=20, deadline=None)
@given(n_blocks=st.integers(10, 150), hot=st.integers(2, 10), seed=st.integers(0, 999))
def test_any_model_walks_without_error(n_blocks, hot, seed):
    hot = min(hot, n_blocks)
    model = build_model(seed=seed, n_blocks=n_blocks, hot=hot)
    walker = build_walker(model, seed=seed + 1)
    for _ in range(300):
        instr = walker.next_instruction()
        assert instr.pc >= 0x1000_0000
