"""Tests for live run telemetry (repro.obs.live): heartbeats, sinks, and
pool-progress aggregation."""

import io
import json

import pytest

from repro.analysis import experiments, runner
from repro.analysis.snapshot import capture
from repro.obs.live import (
    Heartbeat,
    JsonlSink,
    ProgressAggregator,
    StateFileSink,
    TtyProgressSink,
    render_sample,
)


@pytest.fixture(autouse=True)
def _tiny_isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.005")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


class _Stats:
    def __init__(self, retired):
        self.retired = retired


# -- Heartbeat --------------------------------------------------------------

def test_heartbeat_interval_rounds_up_to_power_of_two():
    beats = []
    hb = Heartbeat(beats.append, interval=3)
    assert hb.interval == 4 and hb.mask == 3
    assert Heartbeat(beats.append, interval=1024).interval == 1024
    assert Heartbeat(beats.append, interval=1).interval == 1
    with pytest.raises(ValueError):
        Heartbeat(beats.append, interval=0)


def test_heartbeat_sample_fields_and_rolling_rates():
    beats = []
    hb = Heartbeat(beats.append, interval=64, target_instructions=1000,
                   label="specint-smt-full")
    hb.beat(64, _Stats(128))
    hb.beat(128, _Stats(400))
    first, second = beats
    assert first["label"] == "specint-smt-full"
    assert first["cycle"] == 64 and first["retired"] == 128
    assert first["ipc"] == pytest.approx(2.0)
    assert first["pct"] == pytest.approx(12.8)
    assert first["target"] == 1000
    # The rolling window covers only the beats since the last sample.
    assert second["ipc"] == pytest.approx(400 / 128)
    assert second["rolling_ipc"] == pytest.approx((400 - 128) / 64)
    assert hb.beats == 2


def test_heartbeat_close_is_safe_without_sink_close():
    hb = Heartbeat(lambda s: None)
    hb.close()  # plain callables have no close(); must not raise

    closed = []

    class Sink:
        def __call__(self, sample):
            pass

        def close(self):
            closed.append(True)

    Heartbeat(Sink()).close()
    assert closed == [True]


def test_render_sample_is_human_readable():
    line = render_sample({"label": "apache-smt-full", "cycle": 2048,
                          "retired": 4096, "target": 10000, "pct": 41.0,
                          "rolling_ipc": 2.5, "ips": 1_500_000.0,
                          "eta_s": 75.0, "elapsed_s": 1.0})
    assert "apache-smt-full" in line
    assert "4,096/10,000 instr" in line
    assert "IPC 2.50" in line
    assert "1.5M instr/s" in line
    assert "ETA 01:15" in line


# -- attached to a real simulation ------------------------------------------

def test_heartbeat_does_not_perturb_simulation_results():
    from repro.analysis.experiments import build_simulation

    plain = build_simulation("specint", "smt", "full", seed=7)
    plain.run(max_instructions=4_000)

    beats = []
    observed = build_simulation("specint", "smt", "full", seed=7)
    observed.attach_heartbeat(Heartbeat(beats.append, interval=256))
    observed.run(max_instructions=4_000)

    assert beats  # the heartbeat actually fired
    assert capture(observed) == capture(plain)


def test_execute_spec_with_heartbeat_sets_target_and_closes():
    sink_closed = []

    class Sink:
        def __init__(self):
            self.samples = []

        def __call__(self, sample):
            self.samples.append(sample)

        def close(self):
            sink_closed.append(True)

    sink = Sink()
    hb = Heartbeat(sink, interval=256)
    spec = experiments.run_spec("specint", "smt", "full")
    art = experiments.execute_spec(spec, heartbeat=hb)
    assert hb.target == spec["instructions"]
    assert sink.samples and sink_closed == [True]
    assert art.fingerprint  # a real artifact came back


# -- sinks ------------------------------------------------------------------

def test_jsonl_sink_appends_one_object_per_beat(tmp_path):
    path = tmp_path / "beats.jsonl"
    sink = JsonlSink(path)
    sink({"cycle": 1})
    sink({"cycle": 2})
    sink.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == [{"cycle": 1}, {"cycle": 2}]


def test_state_file_sink_keeps_only_latest_sample(tmp_path):
    path = tmp_path / "state.json"
    refreshes = []
    sink = StateFileSink(path, on_write=lambda: refreshes.append(1))
    sink({"cycle": 1, "retired": 10})
    sink({"cycle": 2, "retired": 20})
    assert json.loads(path.read_text()) == {"cycle": 2, "retired": 20}
    assert len(refreshes) == 2


def test_tty_sink_overwrites_with_carriage_returns():
    buf = io.StringIO()
    sink = TtyProgressSink(buf)
    sink.write_line("long first line")
    sink.write_line("short")
    sink.close()
    text = buf.getvalue()
    assert text.startswith("\rlong first line")
    # The shorter second line pads over the first one's remains.
    assert "\rshort" + " " * (len("long first line") - len("short")) in text
    assert text.endswith("\n")


# -- pool aggregation -------------------------------------------------------

def test_progress_aggregator_folds_worker_states(tmp_path):
    buf = io.StringIO()
    agg = ProgressAggregator(tmp_path, total_runs=3,
                             total_instructions=3000, stream=buf)
    StateFileSink(agg.path_for(0))({"retired": 500, "ips": 100.0})
    StateFileSink(agg.path_for(2))({"retired": 1000, "ips": 200.0})
    (tmp_path / "worker-1.json").write_text("{torn write")  # skipped

    combined = agg.aggregate()
    assert combined["active"] == 2 and combined["runs"] == 3
    assert combined["retired"] == 1500
    assert combined["ips"] == pytest.approx(300.0)
    assert combined["pct"] == pytest.approx(50.0)

    line = agg.render()
    assert "2/3 runs" in line and "1,500/3,000 instr" in line
    agg.refresh(final=True)
    assert buf.getvalue().endswith("\n")


def test_aggregator_marks_dead_workers_stale(tmp_path):
    import os

    agg = ProgressAggregator(tmp_path, total_runs=2,
                             total_instructions=2000, stale_after=30.0)
    StateFileSink(agg.path_for(0))({"retired": 500, "ips": 100.0})
    StateFileSink(agg.path_for(1))({"retired": 200, "ips": 50.0})
    # Backdate worker 1's heartbeat file: the worker died mid-run.
    dead = agg.path_for(1)
    os.utime(dead, (os.stat(dead).st_atime, os.stat(dead).st_mtime - 120))

    combined = agg.aggregate()
    assert combined["active"] == 1 and combined["stale"] == 1
    # Persisted work still counts toward progress; the dead worker's
    # throughput does not.
    assert combined["retired"] == 700
    assert combined["ips"] == pytest.approx(100.0)
    assert "1 stalled" in agg.render()


def test_aggregator_staleness_can_be_disabled(tmp_path):
    import os

    agg = ProgressAggregator(tmp_path, total_runs=1,
                             total_instructions=1000, stale_after=None)
    StateFileSink(agg.path_for(0))({"retired": 100, "ips": 10.0})
    path = agg.path_for(0)
    os.utime(path, (os.stat(path).st_atime, os.stat(path).st_mtime - 3600))
    combined = agg.aggregate()
    assert combined["active"] == 1 and combined["stale"] == 0
    assert "stalled" not in agg.render()


def test_run_many_progress_serial_path(capsys):
    result = runner.run_many([("specint", "smt", "full")], max_workers=1,
                             progress=True)
    assert set(result) == {"specint-smt-full"}
    # The aggregate line went to stderr and was finished with a newline.
    err = capsys.readouterr().err
    assert "runs" in err and err.endswith("\n")


def test_aggregator_prune_removes_previous_incarnation_files(tmp_path):
    agg = ProgressAggregator(tmp_path, total_runs=2,
                             total_instructions=2000)
    StateFileSink(agg.path_for(0))({"retired": 500, "ips": 100.0})
    (tmp_path / "worker-7.json").write_text("{}")  # dead incarnation's
    (tmp_path / "journal.jsonl").write_text("keep")  # not a worker file
    removed = agg.prune()
    assert removed == ["worker-0.json", "worker-7.json"]
    assert (tmp_path / "journal.jsonl").exists()
    assert agg.aggregate()["active"] == 0
    assert agg.prune() == []  # idempotent
