"""Shared test fixtures."""

from __future__ import annotations

import random

import pytest

from repro.isa.code import CodeModel, CodeModelConfig, CodeWalker, SegmentSpec
from repro.isa.data import DataModel, Region
from repro.isa.mix import BranchProfile, InstructionMix
from repro.isa.types import Mode


@pytest.fixture(scope="session")
def session_store_dir(tmp_path_factory):
    """One run-store directory for the whole test session."""
    return tmp_path_factory.mktemp("repro-store")


@pytest.fixture(autouse=True)
def _isolated_run_store(session_store_dir, monkeypatch):
    """Point the on-disk run store at a session temp dir.

    Keeps tests from writing ``.repro_cache/`` into the repository while
    still letting identical canonical runs be shared across test modules
    within one session (that sharing is the store working as designed).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(session_store_dir))


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def user_mix():
    return InstructionMix(
        load=0.20, store=0.10, branch=0.15, fp=0.02,
        branches=BranchProfile(uncond=0.19, indirect=0.10, call=0.025,
                               ret=0.025, cond_taken=0.66),
    )


@pytest.fixture
def small_code_model(user_mix):
    return CodeModel(CodeModelConfig(
        "test-code", 0x10_0000_0000, user_mix,
        segments=(SegmentSpec("main", 120, 24), SegmentSpec("aux", 60, 12)),
        seed=42,
    ))


@pytest.fixture
def small_regions():
    return [
        Region("t:heap", 0x20_0000_0000, 16, 6, hot_lines=12),
        Region("t:stack", 0x21_0000_0000, 4, 2, hot_lines=6, weight=0.5),
        Region("t:phys", 0x8_0000_0000_0000, 8, 4, hot_lines=8, phys=True),
    ]


@pytest.fixture
def data_model(small_regions, rng):
    return DataModel(small_regions, rng)


@pytest.fixture
def walker(small_code_model, data_model, rng):
    return CodeWalker(small_code_model, rng, data_model, Mode.USER, "user",
                      thread_id=3, asn=5)
