"""Tests for the cache placement hash and NIC batching behavior."""

import random
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, placement_index
from repro.memory.hierarchy import MemoryHierarchy
from repro.net.packets import Packet
from repro.net.stack import NetworkStack
from repro.os_model.kernel import MiniDUX


def test_placement_hash_decorrelates_aligned_bases():
    """Identical offsets in power-of-two-aligned address spaces must not all
    map to the same set (the physical-placement property)."""
    n_sets = 128
    sets = Counter()
    for pid in range(16):
        base = 0x10_0000_0000 + pid * 0x1_0000_0000
        line = (base + 0x40_0000) >> 6
        sets[placement_index(line) & (n_sets - 1)] += 1
    # With plain modular indexing every one of the 16 addresses would land
    # in a single set; the hash must spread them widely.
    assert len(sets) >= 10


def test_placement_hash_keeps_consecutive_lines_spread():
    n_sets = 128
    lines = [(0x4000_0000 >> 6) + i for i in range(n_sets)]
    sets = {placement_index(line) & (n_sets - 1) for line in lines}
    # A sequential walk of one cache's worth of lines should cover most sets.
    assert len(sets) > n_sets // 2


@settings(max_examples=40, deadline=None)
@given(line=st.integers(0, 1 << 40))
def test_placement_hash_deterministic(line):
    assert placement_index(line) == placement_index(line)


def test_sequential_fill_fits_exactly():
    """A cache-sized sequential region must be fully resident after one
    pass, whatever the placement hash does (it is a permutation within any
    power-of-two window only on average -- this checks the realistic case
    of 2-way associativity absorbing collisions)."""
    cache = Cache("T", 64 * 64 * 2, 2, 64)  # 128 lines capacity
    base = 0x7000_0000
    for i in range(96):  # fill to 75% capacity
        cache.access(base + i * 64, 0, 0)
    resident = sum(cache.probe(base + i * 64) for i in range(96))
    assert resident >= 80  # few collision casualties, no wholesale eviction


def _rig():
    osk = MiniDUX(MemoryHierarchy(), n_contexts=1, rng=random.Random(31))
    stack = NetworkStack(osk, random.Random(32), n_netisr=1)
    return osk, stack


def test_nic_batch_limit_respected():
    osk, stack = _rig()
    nic = stack.nic
    conn = stack.new_connection(0, 0, 100)
    for _ in range(nic.batch_limit + 5):
        nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.tick(0)
    osk.interrupts.dispatch(osk._deliver_interrupt)
    # Only one batch was handed to the handler; the rest wait in the ring.
    assert len(nic.rx_ring) == 5


def test_nic_quiet_when_ring_empty():
    osk, stack = _rig()
    stack.nic.tick(0)
    assert stack.nic.interrupts_raised == 0


def test_nic_interrupt_cost_scales_with_batch():
    osk, stack = _rig()
    nic = stack.nic
    conn = stack.new_connection(0, 0, 100)
    posted = []
    osk.post_interrupt = lambda label, cost, effect=None: posted.append(cost)
    nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.tick(0)
    nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.inject(Packet(conn.conn_id, 100, "req"))
    nic.tick(nic.coalesce_interval + 1)
    assert posted[1] > posted[0]
