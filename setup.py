"""Thin setup.py kept for legacy editable installs in offline environments
whose setuptools predates PEP 660 wheel-based editables."""
from setuptools import setup

setup()
